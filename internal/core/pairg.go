package core

import (
	"bytes"

	"swvec/internal/aln"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// This file is the single pair-kernel implementation. The per-width
// entry points (AlignPair8, AlignPair16, AlignPair16W, AlignPair32,
// AlignPair8W) are thin instantiations of the two generic variants
// below — affine and linear gap models — over a vek.Engine, so every
// kernel optimization lands once and every engine (256- or 512-bit)
// picks it up.
//
// Charging discipline: the generic code issues exactly the op sequence
// the hand-written kernels issued, at the engine's width. The one
// deliberate deviation is that the traceback direction constants are
// only broadcast when a traceback is requested.

// pairBufs owns the reusable buffers of one pair-kernel instantiation.
// A zero value is ready to use; embedding one in Scratch makes the
// kernel allocation-free on warm calls.
type pairBufs[E vek.Elem] struct {
	h          [3][]E
	e, f       [2][]E
	qMul, dRev []int32
	qE, dRevE  []E
	scoreBuf   []E
}

// bufE returns *p resized to n elements, reusing capacity, with every
// element set to fill.
func bufE[E vek.Elem](p *[]E, n int, fill E) []E {
	b := *p
	if cap(b) < n {
		//swlint:ignore hotpathalloc grow-once diagonal buffer, warm calls reuse capacity
		b = make([]E, n)
	} else {
		b = b[:n]
	}
	for i := range b {
		b[i] = fill
	}
	*p = b
	return b
}

// clipE returns s[off : off+want] clipped to at most want (>=0)
// elements, for the partial-load tails.
func clipE[E vek.Elem](s []E, off, want int) []E {
	if want < 0 {
		want = 0
	}
	if off >= len(s) {
		return nil
	}
	end := off + want
	if end > len(s) {
		end = len(s)
	}
	return s[off:end]
}

// pairState bundles the rolling diagonal buffers and score-lookup
// tables shared by the vector and scalar paths of one instantiation.
type pairState[V any, E vek.Elem] struct {
	m, n int
	// hPrev2/hPrev/hCur are H along diagonals d-2, d-1, d; slot i is
	// row i (1-based), slot 0 and slot d are boundary guards.
	hPrev2, hPrev, hCur []E
	ePrev, eCur         []E
	fPrev, fCur         []E
	// qMul[i] = 32*code(q[i]) and dRev[t] = code(dseq[n-1-t]) widened,
	// so that a diagonal's gather indices come from two consecutive
	// loads (§III-A: the memory order matches the fill order).
	qMul []int32
	dRev []int32
	flat []int32
	// fixed selects the match/mismatch fast path (Fig. 9's "without
	// substitution matrix" configuration): scores come from a
	// compare-and-blend on the residue codes below instead of gathers
	// or profile lookups.
	fixed       bool
	matchVec    V
	mismatchVec V
	qE          []E
	dRevE       []E
	// prof and scoreBuf serve the 8-bit general path: no 8-bit gather
	// exists, so scores are assembled lane by lane from the profile.
	prof     *submat.Profile8
	scoreBuf []E
	dseq     []uint8
}

// profile8For returns the 8-bit query profile for (mat, q, gaps),
// serving it from the scratch's cache when the previous call used the
// same matrix, query contents, and gap penalties. The query is
// compared by value and cached as a private copy: callers (the
// adaptive ladder, the server) reuse their encode buffers, so an
// aliased comparison would falsely hit. Gap penalties are part of the
// key even though today's profile rows don't depend on them: a
// profile variant that bakes in a gap-derived bias must never be
// served stale when only the gaps change between searches.
func profile8For(s *Scratch, mat *submat.Matrix, q []uint8, g aln.Gaps) *submat.Profile8 {
	if s == nil {
		return submat.NewProfile8(mat, q)
	}
	if s.prof8 != nil && s.profMat == mat && s.profGaps == g && bytes.Equal(s.profQuery, q) {
		s.profileHits++
		return s.prof8
	}
	s.prof8 = submat.NewProfile8(mat, q)
	s.profMat = mat
	s.profGaps = g
	//swlint:ignore hotpathalloc cache-miss path: repeated queries (the server steady state) hit the cache above
	s.profQuery = append(s.profQuery[:0], q...)
	return s.prof8
}

// initPairState prepares st for one alignment, reusing bufs and the
// scratch's query-profile cache (nil scratch allocates per call).
func initPairState[V any, E vek.Elem, En vek.Engine[V, E]](eng En, mch vek.Machine, st *pairState[V, E], q, dseq []uint8, mat *submat.Matrix, g aln.Gaps, bufs *pairBufs[E], s *Scratch) {
	m, n := len(q), len(dseq)
	lanes := eng.Lanes()
	slack := lanes + 2
	size := m + 2 + slack
	st.m, st.n = m, n
	st.dseq = dseq
	st.hPrev2 = bufE(&bufs.h[0], size, 0)
	st.hPrev = bufE(&bufs.h[1], size, 0)
	st.hCur = bufE(&bufs.h[2], size, 0)
	neg := eng.NegInf()
	st.ePrev = bufE(&bufs.e[0], size, neg)
	st.eCur = bufE(&bufs.e[1], size, neg)
	st.fPrev = bufE(&bufs.f[0], size, neg)
	st.fCur = bufE(&bufs.f[1], size, neg)
	if eng.HasGather() {
		st.flat = mat.Flat32()
		st.qMul = buf32(&bufs.qMul, m+slack, 0)
		for i, c := range q {
			st.qMul[i] = int32(c) * submat.W
		}
		st.dRev = buf32(&bufs.dRev, n+slack, 0)
		for t := 0; t < n; t++ {
			st.dRev[t] = int32(dseq[n-1-t])
		}
	}
	st.fixed = false
	if eng.SupportsFixed() {
		if match, mismatch, ok := mat.FixedScores(); ok && allRealCodes(q, mat) && allRealCodes(dseq, mat) {
			st.fixed = true
			st.matchVec = eng.Splat(mch, eng.Clamp(int32(match)))
			st.mismatchVec = eng.Splat(mch, eng.Clamp(int32(mismatch)))
			st.qE = bufE(&bufs.qE, m+slack, 0)
			for i, c := range q {
				st.qE[i] = E(c)
			}
			st.dRevE = bufE(&bufs.dRevE, n+slack, 0)
			for t := 0; t < n; t++ {
				st.dRevE[t] = E(dseq[n-1-t])
			}
		}
	}
	if !eng.HasGather() && !st.fixed {
		st.prof = profile8For(s, mat, q, g)
		st.scoreBuf = bufE(&bufs.scoreBuf, lanes, 0)
	}
	// One-time profile/index preparation, charged as scalar work.
	mch.T.Add(vek.OpScalarStore, vek.W256, uint64(m+n))
}

// allRealCodes reports whether every residue code is a real residue of
// the matrix's alphabet (the compare fast path must not treat two
// sentinels as a match).
func allRealCodes(seq []uint8, mat *submat.Matrix) bool {
	size := uint8(mat.Alphabet().Size())
	for _, c := range seq {
		if c >= size {
			return false
		}
	}
	return true
}

// scoreVec computes the lane-count substitution scores for rows
// r..r+lanes-1 of diagonal d: compare-and-blend for fixed scores,
// gathers into the reorganized flat matrix for the 16/32-bit general
// path, and lane-by-lane profile assembly for the 8-bit general path
// (no 8-bit gather exists on any modeled architecture — §III-C).
func scoreVec[V any, E vek.Elem, En vek.Engine[V, E]](eng En, mch vek.Machine, st *pairState[V, E], d, r int) V {
	t0 := st.n - d + r
	if st.fixed {
		qv := eng.Load(mch, st.qE[r-1:])
		dv := eng.Load(mch, st.dRevE[t0:])
		eq := eng.CmpEq(mch, qv, dv)
		return eng.Blend(mch, st.mismatchVec, st.matchVec, eq)
	}
	if eng.HasGather() {
		return eng.GatherScores(mch, st.flat, st.qMul, st.dRev, r-1, t0)
	}
	lanes := eng.Lanes()
	for l := 0; l < lanes; l++ {
		i := r + l
		st.scoreBuf[l] = E(st.prof.Score(i-1, st.dseq[d-i-1]))
	}
	mch.T.Add(vek.OpScalarLoad, vek.W256, uint64(lanes))
	mch.T.Add(vek.OpScalarStore, vek.W256, uint64(lanes))
	return eng.Load(mch, st.scoreBuf)
}

// scoreVecPartial is scoreVec for a zero-padded tail of valid lanes.
func scoreVecPartial[V any, E vek.Elem, En vek.Engine[V, E]](eng En, mch vek.Machine, st *pairState[V, E], d, r, valid int) V {
	t0 := st.n - d + r
	if st.fixed {
		qv := eng.LoadPartial(mch, clipE(st.qE, r-1, valid))
		dv := eng.LoadPartial(mch, clipE(st.dRevE, t0, valid))
		eq := eng.CmpEq(mch, qv, dv)
		return eng.Blend(mch, st.mismatchVec, st.matchVec, eq)
	}
	if eng.HasGather() {
		return eng.GatherScoresPartial(mch, st.flat, st.qMul, st.dRev, r-1, t0, valid)
	}
	for l := 0; l < valid; l++ {
		i := r + l
		st.scoreBuf[l] = E(st.prof.Score(i-1, st.dseq[d-i-1]))
	}
	mch.T.Add(vek.OpScalarLoad, vek.W256, uint64(valid))
	mch.T.Add(vek.OpScalarStore, vek.W256, uint64(valid))
	return eng.LoadPartial(mch, st.scoreBuf[:valid])
}

// rotate advances the rolling buffers by one diagonal and plants the
// boundary guards for diagonal d (just computed): H(0,d)=H(d,0)=0 and
// E/F boundaries at -inf.
func rotatePair[V any, E vek.Elem, En vek.Engine[V, E]](eng En, mch vek.Machine, st *pairState[V, E], d int) {
	neg := eng.NegInf()
	st.hCur[0] = 0
	st.eCur[0] = neg
	st.fCur[0] = neg
	if d <= st.m {
		st.hCur[d] = 0
		st.eCur[d] = neg
		st.fCur[d] = neg
	}
	mch.T.Add(vek.OpScalarStore, vek.W256, 6)
	st.hPrev2, st.hPrev, st.hCur = st.hPrev, st.hCur, st.hPrev2
	st.ePrev, st.eCur = st.eCur, st.ePrev
	st.fPrev, st.fCur = st.fCur, st.fPrev
}

// tracker accumulates the best score, optionally with its position.
type tracker[V any, E vek.Elem] struct {
	needPos bool
	best    int32
	endQ    int
	endD    int
	// vMax is the deferred per-lane maximum used when positions are
	// not needed.
	vMax V
	// bestV broadcasts best for the position-tracking compare.
	bestV V
}

func newTracker[V any, E vek.Elem, En vek.Engine[V, E]](eng En, mch vek.Machine, needPos bool) tracker[V, E] {
	return tracker[V, E]{needPos: needPos, endQ: -1, endD: -1, vMax: eng.Zero(mch), bestV: eng.Zero(mch)}
}

// trkUpdateVector folds a full vector of fresh H values for rows
// r..r+lanes-1 of diagonal d.
func trkUpdateVector[V any, E vek.Elem, En vek.Engine[V, E]](eng En, mch vek.Machine, t *tracker[V, E], h V, r, d int) {
	if !t.needPos {
		t.vMax = eng.Max(mch, t.vMax, h)
		return
	}
	gt := eng.CmpGt(mch, h, t.bestV)
	if eng.MoveMask(mch, gt) == 0 {
		return
	}
	// Rare path: some lane beats the current best; find it scalar-ly.
	lanes := eng.Lanes()
	for l := 0; l < lanes; l++ {
		if v := int32(eng.Lane(h, l)); v > t.best {
			t.best = v
			row := r + l
			t.endQ = row - 1
			t.endD = d - row - 1
		}
	}
	mch.T.Add(vek.OpScalar, vek.W256, uint64(lanes))
	t.bestV = eng.Splat(mch, eng.Clamp(t.best))
}

// trkUpdateScalar folds one scalar cell value.
func (t *tracker[V, E]) updateScalar(h int32, i, d int) {
	if h > t.best {
		t.best = h
		if t.needPos {
			t.endQ = i - 1
			t.endD = d - i - 1
		}
	}
}

// trkFinish reduces the deferred maxima and fills the result.
func trkFinish[V any, E vek.Elem, En vek.Engine[V, E]](eng En, mch vek.Machine, t *tracker[V, E], res *aln.ScoreResult) {
	if !t.needPos {
		if v := int32(eng.ReduceMax(mch, t.vMax)); v > t.best {
			t.best = v
		}
	}
	res.Score = t.best
	res.EndQ, res.EndD = t.endQ, t.endD
	if t.best >= eng.SatCeil() {
		res.Saturated = true
	}
	if t.best == 0 {
		res.EndQ, res.EndD = -1, -1
	}
}

func clampI32(v, hi int32) int32 {
	if v > hi {
		return hi
	}
	return v
}

// eagerReduce is the §III-D ablation: reduce every vector immediately
// instead of keeping per-lane maxima.
func eagerReduce[V any, E vek.Elem, En vek.Engine[V, E]](eng En, mch vek.Machine, t *tracker[V, E], h V) {
	v := int32(eng.ReduceMax(mch, h))
	mch.T.Add(vek.OpScalar, vek.W256, 1)
	if v > t.best {
		t.best = v
	}
}

// alignPairAffine is the generic affine-gap wavefront kernel:
// anti-diagonal vectorization, diagonal-indexed rolling buffers,
// zero-padded or scalar tails for short segments, and the deferred
// per-lane maximum of §III-D.
//
//sw:hotpath
func alignPairAffine[V any, E vek.Elem, En vek.Engine[V, E]](eng En, mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, opt PairOptions, bufs *pairBufs[E]) (aln.ScoreResult, *TraceMatrix, error) {
	res := aln.ScoreResult{EndQ: -1, EndD: -1}
	m, n := len(q), len(dseq)
	var st pairState[V, E]
	initPairState(eng, mch, &st, q, dseq, mat, opt.Gaps, bufs, opt.Scratch)
	var tb *TraceMatrix
	if opt.Traceback {
		tb = newTraceMatrix(m, n)
	}
	trk := newTracker[V, E](eng, mch, opt.Traceback || opt.TrackPosition)
	lanes := eng.Lanes()
	openV := eng.Splat(mch, eng.Clamp(opt.Gaps.Open))
	extV := eng.Splat(mch, eng.Clamp(opt.Gaps.Extend))
	zeroV := eng.Zero(mch)
	var oneV, twoV, threeV, fourV, eightV V
	if tb != nil {
		oneV = eng.Splat(mch, E(tbDiag))
		twoV = eng.Splat(mch, E(tbLeft))
		threeV = eng.Splat(mch, E(tbUp))
		fourV = eng.Splat(mch, E(tbEExtend))
		eightV = eng.Splat(mch, E(tbFExtend))
	}
	thr := opt.scalarThreshold(lanes)

	for d := 2; d <= m+n; d++ {
		lo, hi := diagBounds(d, m, n)
		segLen := hi - lo + 1
		var tbDiagSlice []int8
		if tb != nil {
			tbDiagSlice = tb.diagSlice(d)
		}
		if segLen < thr {
			for i := lo; i <= hi; i++ {
				scalarCellAffine(eng, mch, &st, q, dseq, mat, &opt, &trk, tbDiagSlice, d, i, lo)
			}
			rotatePair(eng, mch, &st, d)
			continue
		}
		r := lo
		for ; r+lanes <= hi+1; r += lanes {
			score := scoreVec(eng, mch, &st, d, r)

			up := eng.Load(mch, st.hPrev[r-1:])
			left := eng.Load(mch, st.hPrev[r:])
			diagv := eng.Load(mch, st.hPrev2[r-1:])
			eIn := eng.Load(mch, st.ePrev[r:])
			fIn := eng.Load(mch, st.fPrev[r-1:])

			eExtPart := eng.SubSat(mch, eIn, extV)
			eOpenPart := eng.SubSat(mch, left, openV)
			e := eng.Max(mch, eExtPart, eOpenPart)
			fExtPart := eng.SubSat(mch, fIn, extV)
			fOpenPart := eng.SubSat(mch, up, openV)
			f := eng.Max(mch, fExtPart, fOpenPart)

			h0 := eng.AddSat(mch, diagv, score)
			h := eng.Max(mch, h0, zeroV)
			h = eng.Max(mch, h, e)
			h = eng.Max(mch, h, f)

			eng.Store(mch, st.hCur[r:], h)
			eng.Store(mch, st.eCur[r:], e)
			eng.Store(mch, st.fCur[r:], f)
			if opt.RowMajorLayout {
				// Ablation: a row-major layout turns the three diagonal
				// stores and five diagonal loads into strided scalar
				// traffic (Fig. 2 comparison).
				mch.T.Add(vek.OpScalarLoad, vek.W256, uint64(5*lanes))
				mch.T.Add(vek.OpScalarStore, vek.W256, uint64(3*lanes))
			}

			if opt.EagerMax {
				eagerReduce(eng, mch, &trk, h)
			} else {
				trkUpdateVector(eng, mch, &trk, h, r, d)
			}

			if tb != nil {
				eExt := eng.CmpGt(mch, eExtPart, eOpenPart)
				fExt := eng.CmpGt(mch, fExtPart, fOpenPart)
				dir := dirEncode(eng, mch, h, h0, e, zeroV, oneV, twoV, threeV)
				dir = eng.Or(mch, dir, eng.And(mch, eExt, fourV))
				dir = eng.Or(mch, dir, eng.And(mch, fExt, eightV))
				eng.StoreDirs(mch, tbDiagSlice[r-lo:r-lo+lanes], dir)
			}
		}
		if tail := hi - r + 1; tail > 0 {
			if opt.ScalarTail {
				for i := r; i <= hi; i++ {
					scalarCellAffine(eng, mch, &st, q, dseq, mat, &opt, &trk, tbDiagSlice, d, i, lo)
				}
			} else {
				paddedTailAffine(eng, mch, &st, &opt, &trk, tbDiagSlice, d, r, hi, lo, openV, extV)
			}
		}
		rotatePair(eng, mch, &st, d)
	}
	trkFinish(eng, mch, &trk, &res)
	return res, tb, nil
}

// scalarCellAffine computes one cell with scalar instructions,
// matching the vector path bit for bit (including saturation).
func scalarCellAffine[V any, E vek.Elem, En vek.Engine[V, E]](eng En, mch vek.Machine, st *pairState[V, E], q, dseq []uint8, mat *submat.Matrix, opt *PairOptions, trk *tracker[V, E], tbSlice []int8, d, i, lo int) {
	j := d - i
	sc := int32(mat.Score(q[i-1], dseq[j-1]))
	eExtPart := eng.SatSub(int32(st.ePrev[i]), opt.Gaps.Extend)
	eOpenPart := eng.SatSub(int32(st.hPrev[i]), opt.Gaps.Open)
	e := maxI32(eExtPart, eOpenPart)
	fExtPart := eng.SatSub(int32(st.fPrev[i-1]), opt.Gaps.Extend)
	fOpenPart := eng.SatSub(int32(st.hPrev[i-1]), opt.Gaps.Open)
	f := maxI32(fExtPart, fOpenPart)
	h0 := eng.SatAdd(int32(st.hPrev2[i-1]), sc)
	h := maxI32(maxI32(h0, 0), maxI32(e, f))
	st.hCur[i] = E(h)
	st.eCur[i] = E(e)
	st.fCur[i] = E(f)
	trk.updateScalar(h, i, d)
	mch.T.Add(vek.OpScalar, vek.W256, 10)
	mch.T.Add(vek.OpScalarLoad, vek.W256, 6)
	mch.T.Add(vek.OpScalarStore, vek.W256, 3)
	if tbSlice != nil {
		var dir uint8
		switch {
		case h == 0:
			dir = tbStop
		case h == h0:
			dir = tbDiag
		case h == e:
			dir = tbLeft
		default:
			dir = tbUp
		}
		if eExtPart > eOpenPart {
			dir |= tbEExtend
		}
		if fExtPart > fOpenPart {
			dir |= tbFExtend
		}
		tbSlice[i-lo] = int8(dir)
		mch.T.Add(vek.OpScalarStore, vek.W256, 1)
	}
}

// paddedTailAffine processes the final partial vector of a diagonal
// with zero padding (§III-B, Fig. 3): partial loads bring in the valid
// lanes, padded lanes compute garbage that the partial stores and the
// masked maximum discard.
func paddedTailAffine[V any, E vek.Elem, En vek.Engine[V, E]](eng En, mch vek.Machine, st *pairState[V, E], opt *PairOptions, trk *tracker[V, E], tbSlice []int8, d, r, hi, lo int, openV, extV V) {
	valid := hi - r + 1
	score := scoreVecPartial(eng, mch, st, d, r, valid)

	up := eng.LoadPartial(mch, st.hPrev[r-1:r-1+valid])
	left := eng.LoadPartial(mch, st.hPrev[r:r+valid])
	diagv := eng.LoadPartial(mch, st.hPrev2[r-1:r-1+valid])
	// E/F padded lanes must read -inf, not zero, so they cannot win
	// the max; load full vectors (the buffers have slack) and rely on
	// the partial stores to drop the padded lanes.
	eIn := eng.Load(mch, st.ePrev[r:])
	fIn := eng.Load(mch, st.fPrev[r-1:])

	eExtPart := eng.SubSat(mch, eIn, extV)
	eOpenPart := eng.SubSat(mch, left, openV)
	e := eng.Max(mch, eExtPart, eOpenPart)
	fExtPart := eng.SubSat(mch, fIn, extV)
	fOpenPart := eng.SubSat(mch, up, openV)
	f := eng.Max(mch, fExtPart, fOpenPart)

	zeroV := eng.Zero(mch)
	h0 := eng.AddSat(mch, diagv, score)
	h := eng.Max(mch, h0, zeroV)
	h = eng.Max(mch, h, e)
	h = eng.Max(mch, h, f)
	// Mask padded lanes to zero before folding into the maximum.
	hMasked := eng.MaskTail(mch, h, valid)

	eng.StorePartial(mch, st.hCur[r:r+valid], h)
	eng.StorePartial(mch, st.eCur[r:r+valid], e)
	eng.StorePartial(mch, st.fCur[r:r+valid], f)

	if opt.EagerMax {
		eagerReduce(eng, mch, trk, hMasked)
	} else {
		trkUpdateVector(eng, mch, trk, hMasked, r, d)
	}
	if tbSlice != nil {
		oneV := eng.Splat(mch, E(tbDiag))
		twoV := eng.Splat(mch, E(tbLeft))
		threeV := eng.Splat(mch, E(tbUp))
		eExt := eng.CmpGt(mch, eExtPart, eOpenPart)
		fExt := eng.CmpGt(mch, fExtPart, fOpenPart)
		dir := dirEncode(eng, mch, h, h0, e, zeroV, oneV, twoV, threeV)
		dir = eng.Or(mch, dir, eng.And(mch, eExt, eng.Splat(mch, E(tbEExtend))))
		dir = eng.Or(mch, dir, eng.And(mch, fExt, eng.Splat(mch, E(tbFExtend))))
		eng.StoreDirs(mch, tbSlice[r-lo:r-lo+valid], dir)
	}
}

// alignPairLinear is the reduced kernel for the linear gap model
// (Fig. 7's "without affine gap penalty" configuration): no E/F gap
// state is kept, every gap step pays the flat extension cost, saving
// two buffer loads, two stores and four arithmetic ops per vector.
//
//sw:hotpath
func alignPairLinear[V any, E vek.Elem, En vek.Engine[V, E]](eng En, mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, opt PairOptions, bufs *pairBufs[E]) (aln.ScoreResult, *TraceMatrix, error) {
	res := aln.ScoreResult{EndQ: -1, EndD: -1}
	m, n := len(q), len(dseq)
	var st pairState[V, E]
	initPairState(eng, mch, &st, q, dseq, mat, opt.Gaps, bufs, opt.Scratch)
	var tb *TraceMatrix
	if opt.Traceback {
		tb = newTraceMatrix(m, n)
	}
	trk := newTracker[V, E](eng, mch, opt.Traceback || opt.TrackPosition)
	lanes := eng.Lanes()
	extV := eng.Splat(mch, eng.Clamp(opt.Gaps.Extend))
	zeroV := eng.Zero(mch)
	var oneV, twoV, threeV V
	if tb != nil {
		oneV = eng.Splat(mch, E(tbDiag))
		twoV = eng.Splat(mch, E(tbLeft))
		threeV = eng.Splat(mch, E(tbUp))
	}
	thr := opt.scalarThreshold(lanes)

	for d := 2; d <= m+n; d++ {
		lo, hi := diagBounds(d, m, n)
		var tbDiagSlice []int8
		if tb != nil {
			tbDiagSlice = tb.diagSlice(d)
		}
		if hi-lo+1 < thr {
			for i := lo; i <= hi; i++ {
				scalarCellLinear(eng, mch, &st, q, dseq, mat, &opt, &trk, tbDiagSlice, d, i, lo)
			}
			rotatePair(eng, mch, &st, d)
			continue
		}
		r := lo
		for ; r+lanes <= hi+1; r += lanes {
			// The general-matrix path always gathers here: the linear
			// kernel keeps the full-vector body independent of the
			// fixed-score fast path (the tails do use it).
			var score V
			if !st.fixed && eng.HasGather() {
				score = eng.GatherScores(mch, st.flat, st.qMul, st.dRev, r-1, st.n-d+r)
			} else {
				score = scoreVec(eng, mch, &st, d, r)
			}

			up := eng.Load(mch, st.hPrev[r-1:])
			left := eng.Load(mch, st.hPrev[r:])
			diagv := eng.Load(mch, st.hPrev2[r-1:])

			e := eng.SubSat(mch, left, extV)
			f := eng.SubSat(mch, up, extV)
			h0 := eng.AddSat(mch, diagv, score)
			h := eng.Max(mch, h0, zeroV)
			h = eng.Max(mch, h, e)
			h = eng.Max(mch, h, f)
			eng.Store(mch, st.hCur[r:], h)
			if opt.RowMajorLayout {
				mch.T.Add(vek.OpScalarLoad, vek.W256, uint64(3*lanes))
				mch.T.Add(vek.OpScalarStore, vek.W256, uint64(lanes))
			}

			if opt.EagerMax {
				eagerReduce(eng, mch, &trk, h)
			} else {
				trkUpdateVector(eng, mch, &trk, h, r, d)
			}

			if tb != nil {
				dir := dirEncode(eng, mch, h, h0, e, zeroV, oneV, twoV, threeV)
				eng.StoreDirs(mch, tbDiagSlice[r-lo:r-lo+lanes], dir)
			}
		}
		if tail := hi - r + 1; tail > 0 {
			if opt.ScalarTail {
				for i := r; i <= hi; i++ {
					scalarCellLinear(eng, mch, &st, q, dseq, mat, &opt, &trk, tbDiagSlice, d, i, lo)
				}
			} else {
				paddedTailLinear(eng, mch, &st, &opt, &trk, tbDiagSlice, d, r, hi, lo, extV)
			}
		}
		rotatePair(eng, mch, &st, d)
	}
	trkFinish(eng, mch, &trk, &res)
	return res, tb, nil
}

// paddedTailLinear processes the final partial vector of a diagonal
// with zero padding (§III-B) under the linear gap model.
func paddedTailLinear[V any, E vek.Elem, En vek.Engine[V, E]](eng En, mch vek.Machine, st *pairState[V, E], opt *PairOptions, trk *tracker[V, E], tbSlice []int8, d, r, hi, lo int, extV V) {
	valid := hi - r + 1
	score := scoreVecPartial(eng, mch, st, d, r, valid)
	up := eng.LoadPartial(mch, st.hPrev[r-1:r-1+valid])
	left := eng.LoadPartial(mch, st.hPrev[r:r+valid])
	diagv := eng.LoadPartial(mch, st.hPrev2[r-1:r-1+valid])
	zeroV := eng.Zero(mch)
	e := eng.SubSat(mch, left, extV)
	f := eng.SubSat(mch, up, extV)
	h0 := eng.AddSat(mch, diagv, score)
	h := eng.Max(mch, h0, zeroV)
	h = eng.Max(mch, h, e)
	h = eng.Max(mch, h, f)
	eng.StorePartial(mch, st.hCur[r:r+valid], h)
	hMasked := eng.MaskTail(mch, h, valid)
	if opt.EagerMax {
		eagerReduce(eng, mch, trk, hMasked)
	} else {
		trkUpdateVector(eng, mch, trk, hMasked, r, d)
	}
	if tbSlice != nil {
		oneV := eng.Splat(mch, E(tbDiag))
		twoV := eng.Splat(mch, E(tbLeft))
		threeV := eng.Splat(mch, E(tbUp))
		dir := dirEncode(eng, mch, h, h0, e, zeroV, oneV, twoV, threeV)
		eng.StoreDirs(mch, tbSlice[r-lo:r-lo+valid], dir)
	}
}

// scalarCellLinear computes one linear-gap cell with scalar
// instructions.
func scalarCellLinear[V any, E vek.Elem, En vek.Engine[V, E]](eng En, mch vek.Machine, st *pairState[V, E], q, dseq []uint8, mat *submat.Matrix, opt *PairOptions, trk *tracker[V, E], tbSlice []int8, d, i, lo int) {
	j := d - i
	sc := int32(mat.Score(q[i-1], dseq[j-1]))
	e := eng.SatSub(int32(st.hPrev[i]), opt.Gaps.Extend)
	f := eng.SatSub(int32(st.hPrev[i-1]), opt.Gaps.Extend)
	h0 := eng.SatAdd(int32(st.hPrev2[i-1]), sc)
	h := maxI32(maxI32(h0, 0), maxI32(e, f))
	st.hCur[i] = E(h)
	trk.updateScalar(h, i, d)
	mch.T.Add(vek.OpScalar, vek.W256, 6)
	mch.T.Add(vek.OpScalarLoad, vek.W256, 4)
	mch.T.Add(vek.OpScalarStore, vek.W256, 1)
	if tbSlice != nil {
		var dir uint8
		switch {
		case h == 0:
			dir = tbStop
		case h == h0:
			dir = tbDiag
		case h == e:
			dir = tbLeft
		default:
			dir = tbUp
		}
		tbSlice[i-lo] = int8(dir)
		mch.T.Add(vek.OpScalarStore, vek.W256, 1)
	}
}

// dirEncode builds the 2-bit direction codes from the cell values
// with mask arithmetic only — compares, ANDs and ORs — because
// vpblendvb costs two port-5 uops on the older architectures and the
// direction encode must stay hidden under the kernel's load/gather
// bottleneck (the Fig. 8 "traceback is free" effect). Priority is
// diag > left > up, with H==0 overriding everything to "stop"; "up"
// needs no compare because H always equals one of its four sources.
func dirEncode[V any, E vek.Elem, En vek.Engine[V, E]](eng En, mch vek.Machine, h, h0, e, zeroV, oneV, twoV, threeV V) V {
	maskD := eng.CmpEq(mch, h, h0)
	maskE := eng.CmpEq(mch, h, e)
	maskZ := eng.CmpEq(mch, h, zeroV)
	dM := eng.And(mch, maskD, oneV)
	dE := eng.And(mch, eng.AndNot(mch, maskE, maskD), twoV)
	dF := eng.AndNot(mch, threeV, eng.Or(mch, maskD, maskE))
	dir := eng.Or(mch, eng.Or(mch, dM, dE), dF)
	return eng.AndNot(mch, dir, maskZ)
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
