package core

import (
	"swvec/internal/aln"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// lanes32 is the lane count of the 256-bit 32-bit kernel.
const lanes32 = 8

// negInf32 is the E/F boundary for the 32-bit kernel; headroom for
// repeated subtraction without wraparound.
const negInf32 = int32(-1 << 29)

// AlignPair32 is the 32-bit wavefront kernel: 8 cells per issue, no
// saturation for any biologically plausible score, substitution scores
// gathered directly (the 32-bit case of §III-C, no narrowing needed).
// It is the final escalation tier when 16-bit scores saturate, so the
// whole adaptive chain stays vectorized. opt.Scratch, when set,
// supplies the working buffers so the search pipeline's escalation
// path does not allocate.
func AlignPair32(mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, opt PairOptions) (aln.ScoreResult, error) {
	if err := checkPair(q, dseq, &opt); err != nil {
		return aln.ScoreResult{EndQ: -1, EndD: -1}, err
	}
	// Score-only tier: traceback, position tracking and the 16-bit
	// ablation knobs do not apply; tails always use the padded vector.
	opt.Traceback = false
	opt.TrackPosition = false
	opt.EagerMax = false
	opt.RowMajorLayout = false
	opt.ScalarTail = false
	if opt.Backend == BackendNative {
		return nativePair32(q, dseq, mat, &opt), nil
	}
	var local pairBufs[int32]
	bufs := &local
	if opt.Scratch != nil {
		bufs = &opt.Scratch.pair32
	}
	res, _, err := alignPairAffine[vek.I32x8, int32](vek.E32x8{}, mch, q, dseq, mat, opt, bufs)
	return res, err
}
