package core

import (
	"swvec/internal/aln"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// lanes32 is the lane count of the 256-bit 32-bit kernel.
const lanes32 = 8

// negInf32 is the E/F boundary for the 32-bit kernel; headroom for
// repeated subtraction without wraparound.
const negInf32 = int32(-1 << 29)

// AlignPair32 is the 32-bit wavefront kernel: 8 cells per issue, no
// saturation for any biologically plausible score, substitution scores
// gathered directly (the 32-bit case of §III-C, no narrowing needed).
// It is the final escalation tier when 16-bit scores saturate, so the
// whole adaptive chain stays vectorized.
func AlignPair32(mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, opt PairOptions) (aln.ScoreResult, error) {
	res := aln.ScoreResult{EndQ: -1, EndD: -1}
	if err := checkPair(q, dseq, &opt); err != nil {
		return res, err
	}
	m, n := len(q), len(dseq)
	slack := lanes32 + 2
	var local pair32Scratch
	ps := &local
	if opt.Scratch != nil {
		ps = &opt.Scratch.pair32
	}
	size := m + 2 + slack
	hPrev2 := buf32(&ps.h[0], size, 0)
	hPrev := buf32(&ps.h[1], size, 0)
	hCur := buf32(&ps.h[2], size, 0)
	ePrev := buf32(&ps.e[0], size, negInf32)
	eCur := buf32(&ps.e[1], size, negInf32)
	fPrev := buf32(&ps.f[0], size, negInf32)
	fCur := buf32(&ps.f[1], size, negInf32)
	qMul := buf32(&ps.qMul, m+slack, 0)
	for i, c := range q {
		qMul[i] = int32(c) * submat.W
	}
	dRev := buf32(&ps.dRev, n+slack, 0)
	for t := 0; t < n; t++ {
		dRev[t] = int32(dseq[n-1-t])
	}
	flat := mat.Flat32()
	mch.T.Add(vek.OpScalarStore, vek.W256, uint64(m+n))

	openV := mch.Splat32(opt.Gaps.Open)
	extV := mch.Splat32(opt.Gaps.Extend)
	zeroV := mch.Zero32()
	vMax := zeroV
	var best int32
	thr := opt.scalarThreshold(lanes32)

	for d := 2; d <= m+n; d++ {
		lo, hi := diagBounds(d, m, n)
		if hi-lo+1 < thr {
			for i := lo; i <= hi; i++ {
				j := d - i
				sc := int32(mat.Score(q[i-1], dseq[j-1]))
				e := maxI32(ePrev[i]-opt.Gaps.Extend, hPrev[i]-opt.Gaps.Open)
				f := maxI32(fPrev[i-1]-opt.Gaps.Extend, hPrev[i-1]-opt.Gaps.Open)
				h := maxI32(maxI32(hPrev2[i-1]+sc, 0), maxI32(e, f))
				hCur[i], eCur[i], fCur[i] = h, e, f
				if h > best {
					best = h
				}
				mch.T.Add(vek.OpScalar, vek.W256, 10)
				mch.T.Add(vek.OpScalarLoad, vek.W256, 6)
				mch.T.Add(vek.OpScalarStore, vek.W256, 3)
			}
			rotate32(mch, d, m, hCur, eCur, fCur)
			hPrev2, hPrev, hCur = hPrev, hCur, hPrev2
			ePrev, eCur = eCur, ePrev
			fPrev, fCur = fCur, fPrev
			continue
		}
		r := lo
		for ; r+lanes32 <= hi+1; r += lanes32 {
			t0 := n - d + r
			iq := mch.Load32(qMul[r-1:])
			id := mch.Load32(dRev[t0:])
			score := mch.Gather32(flat, mch.Add32(iq, id))

			up := mch.Load32(hPrev[r-1:])
			left := mch.Load32(hPrev[r:])
			diagv := mch.Load32(hPrev2[r-1:])
			eIn := mch.Load32(ePrev[r:])
			fIn := mch.Load32(fPrev[r-1:])

			e := mch.Max32(mch.Sub32(eIn, extV), mch.Sub32(left, openV))
			f := mch.Max32(mch.Sub32(fIn, extV), mch.Sub32(up, openV))
			h := mch.Add32(diagv, score)
			h = mch.Max32(h, zeroV)
			h = mch.Max32(h, e)
			h = mch.Max32(h, f)
			mch.Store32(hCur[r:], h)
			mch.Store32(eCur[r:], e)
			mch.Store32(fCur[r:], f)
			vMax = mch.Max32(vMax, h)
		}
		if valid := hi - r + 1; valid > 0 {
			t0 := n - d + r
			iq := mch.Load32Partial(clip32(qMul, r-1, valid))
			id := mch.Load32Partial(clip32(dRev, t0, valid))
			score := mch.Gather32(flat, mch.Add32(iq, id))
			up := mch.Load32Partial(hPrev[r-1 : r-1+valid])
			left := mch.Load32Partial(hPrev[r : r+valid])
			diagv := mch.Load32Partial(hPrev2[r-1 : r-1+valid])
			eIn := mch.Load32(ePrev[r:])
			fIn := mch.Load32(fPrev[r-1:])
			e := mch.Max32(mch.Sub32(eIn, extV), mch.Sub32(left, openV))
			f := mch.Max32(mch.Sub32(fIn, extV), mch.Sub32(up, openV))
			h := mch.Add32(diagv, score)
			h = mch.Max32(h, zeroV)
			h = mch.Max32(h, e)
			h = mch.Max32(h, f)
			mch.Store32Partial(hCur[r:r+valid], h)
			mch.Store32Partial(eCur[r:r+valid], e)
			mch.Store32Partial(fCur[r:r+valid], f)
			hMasked := h
			for l := valid; l < lanes32; l++ {
				hMasked[l] = 0
			}
			mch.T.Add(vek.OpLogic, vek.W256, 1)
			vMax = mch.Max32(vMax, hMasked)
		}
		rotate32(mch, d, m, hCur, eCur, fCur)
		hPrev2, hPrev, hCur = hPrev, hCur, hPrev2
		ePrev, eCur = eCur, ePrev
		fPrev, fCur = fCur, fPrev
	}
	if v := mch.ReduceMax32(vMax); v > best {
		best = v
	}
	res.Score = best
	return res, nil
}

func rotate32(mch vek.Machine, d, m int, hCur, eCur, fCur []int32) {
	hCur[0] = 0
	eCur[0], fCur[0] = negInf32, negInf32
	if d <= m {
		hCur[d] = 0
		eCur[d], fCur[d] = negInf32, negInf32
	}
	mch.T.Add(vek.OpScalarStore, vek.W256, 6)
}
