package core

import (
	"swvec/internal/aln"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// lanes16 is the lane count of the 256-bit 16-bit kernel.
const lanes16 = 16

// AlignPair16 aligns encoded query q against encoded database sequence
// dseq with the paper's 16-bit wavefront kernel: anti-diagonal
// vectorization (16 cells per instruction), substitution scores fetched
// by 32-bit gathers into the reorganized flat matrix, diagonal-indexed
// rolling buffers, zero-padded or scalar tails for short segments, and
// the deferred per-lane maximum of §III-D.
//
// When opt.Traceback is set the returned TraceMatrix holds one
// direction byte per cell in diagonal-linearized storage and the
// result carries the end coordinates; otherwise the trace is nil and,
// unless opt.TrackPosition is set, EndQ/EndD are -1 (the deferred
// maximum intentionally discards positions until the final reduction).
func AlignPair16(mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, opt PairOptions) (aln.ScoreResult, *TraceMatrix, error) {
	res := aln.ScoreResult{EndQ: -1, EndD: -1}
	if err := checkPair(q, dseq, &opt); err != nil {
		return res, nil, err
	}
	if opt.Gaps.IsLinear() {
		return alignPair16Linear(mch, q, dseq, mat, opt)
	}
	return alignPair16Affine(mch, q, dseq, mat, opt)
}

// pairState16 bundles the rolling diagonal buffers and score-lookup
// tables shared by the 256-bit and scalar paths.
type pairState16 struct {
	m, n int
	// hPrev2/hPrev/hCur are H along diagonals d-2, d-1, d; slot i is
	// row i (1-based), slot 0 and slot d are boundary guards.
	hPrev2, hPrev, hCur []int16
	ePrev, eCur         []int16
	fPrev, fCur         []int16
	// qMul[i] = 32*code(q[i]) and dRev[t] = code(dseq[n-1-t]) widened,
	// so that a diagonal's gather indices come from two consecutive
	// loads (§III-A: the memory order matches the fill order).
	qMul []int32
	dRev []int32
	flat []int32
	// fixed selects the match/mismatch fast path (Fig. 9's "without
	// substitution matrix" configuration): scores come from a
	// compare-and-blend on the residue codes below instead of gathers.
	fixed       bool
	matchVec    vek.I16x16
	mismatchVec vek.I16x16
	q16         []int16
	dRev16      []int16
}

// scoreVec computes the 16 substitution scores for rows r..r+15 of
// diagonal d, via gather (general matrix) or compare-and-blend (fixed
// scores).
func (st *pairState16) scoreVec(mch vek.Machine, d, r int) vek.I16x16 {
	t0 := st.n - d + r
	if st.fixed {
		qv := mch.Load16(st.q16[r-1:])
		dv := mch.Load16(st.dRev16[t0:])
		eq := mch.CmpEq16(qv, dv)
		return mch.Blend16(st.mismatchVec, st.matchVec, eq)
	}
	iq0 := mch.Load32(st.qMul[r-1:])
	iq1 := mch.Load32(st.qMul[r+7:])
	id0 := mch.Load32(st.dRev[t0:])
	id1 := mch.Load32(st.dRev[t0+8:])
	g0 := mch.Gather32(st.flat, mch.Add32(iq0, id0))
	g1 := mch.Gather32(st.flat, mch.Add32(iq1, id1))
	return mch.Narrow32To16(g0, g1)
}

// scoreVecPartial is scoreVec for a zero-padded tail of valid lanes.
func (st *pairState16) scoreVecPartial(mch vek.Machine, d, r, valid int) vek.I16x16 {
	t0 := st.n - d + r
	if st.fixed {
		qv := mch.Load16Partial(clip16(st.q16, r-1, valid))
		dv := mch.Load16Partial(clip16(st.dRev16, t0, valid))
		eq := mch.CmpEq16(qv, dv)
		return mch.Blend16(st.mismatchVec, st.matchVec, eq)
	}
	iq0 := mch.Load32Partial(clip32(st.qMul, r-1, valid))
	iq1 := mch.Load32Partial(clip32(st.qMul, r+7, valid-8))
	id0 := mch.Load32Partial(clip32(st.dRev, t0, valid))
	id1 := mch.Load32Partial(clip32(st.dRev, t0+8, valid-8))
	g0 := mch.Gather32(st.flat, mch.Add32(iq0, id0))
	g1 := mch.Gather32(st.flat, mch.Add32(iq1, id1))
	return mch.Narrow32To16(g0, g1)
}

// clip16 is clip32 for int16 slices.
func clip16(s []int16, off, want int) []int16 {
	if want < 0 {
		want = 0
	}
	if off >= len(s) {
		return nil
	}
	end := off + want
	if end > len(s) {
		end = len(s)
	}
	return s[off:end]
}

func newPairState16(mch vek.Machine, q, dseq []uint8, mat *submat.Matrix) *pairState16 {
	return newPairState16Lanes(mch, q, dseq, mat, lanes16)
}

func newPairState16Lanes(mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, lanes int) *pairState16 {
	m, n := len(q), len(dseq)
	slack := lanes + 2
	st := &pairState16{m: m, n: n, flat: mat.Flat32()}
	mk := func(fill int16) []int16 {
		b := make([]int16, m+2+slack)
		if fill != 0 {
			for i := range b {
				b[i] = fill
			}
		}
		return b
	}
	st.hPrev2, st.hPrev, st.hCur = mk(0), mk(0), mk(0)
	st.ePrev, st.eCur = mk(negInf16), mk(negInf16)
	st.fPrev, st.fCur = mk(negInf16), mk(negInf16)
	st.qMul = make([]int32, m+slack)
	for i, c := range q {
		st.qMul[i] = int32(c) * submat.W
	}
	st.dRev = make([]int32, n+slack)
	for t := 0; t < n; t++ {
		st.dRev[t] = int32(dseq[n-1-t])
	}
	if match, mismatch, ok := mat.FixedScores(); ok && allRealCodes(q, mat) && allRealCodes(dseq, mat) {
		st.fixed = true
		st.matchVec = mch.Splat16(int16(match))
		st.mismatchVec = mch.Splat16(int16(mismatch))
		st.q16 = make([]int16, m+slack)
		for i, c := range q {
			st.q16[i] = int16(c)
		}
		st.dRev16 = make([]int16, n+slack)
		for t := 0; t < n; t++ {
			st.dRev16[t] = int16(dseq[n-1-t])
		}
	}
	// One-time profile/index preparation, charged as scalar work.
	mch.T.Add(vek.OpScalarStore, vek.W256, uint64(m+n))
	return st
}

// allRealCodes reports whether every residue code is a real residue of
// the matrix's alphabet (the compare fast path must not treat two
// sentinels as a match).
func allRealCodes(seq []uint8, mat *submat.Matrix) bool {
	size := uint8(mat.Alphabet().Size())
	for _, c := range seq {
		if c >= size {
			return false
		}
	}
	return true
}

// rotate advances the rolling buffers by one diagonal and plants the
// boundary guards for diagonal d (just computed): H(0,d)=H(d,0)=0 and
// E/F boundaries at -inf.
func (st *pairState16) rotate(mch vek.Machine, d int) {
	st.hCur[0] = 0
	st.eCur[0] = negInf16
	st.fCur[0] = negInf16
	if d <= st.m {
		st.hCur[d] = 0
		st.eCur[d] = negInf16
		st.fCur[d] = negInf16
	}
	mch.T.Add(vek.OpScalarStore, vek.W256, 6)
	st.hPrev2, st.hPrev, st.hCur = st.hPrev, st.hCur, st.hPrev2
	st.ePrev, st.eCur = st.eCur, st.ePrev
	st.fPrev, st.fCur = st.fCur, st.fPrev
}

// tracker accumulates the best score, optionally with its position.
type tracker struct {
	needPos bool
	best    int32
	endQ    int
	endD    int
	// vMax is the deferred per-lane maximum used when positions are
	// not needed.
	vMax vek.I16x16
	// bestV broadcasts best for the position-tracking compare.
	bestV vek.I16x16
}

func newTracker(mch vek.Machine, needPos bool) *tracker {
	return &tracker{needPos: needPos, endQ: -1, endD: -1, vMax: mch.Zero16(), bestV: mch.Zero16()}
}

// updateVector folds a full vector of fresh H values for rows
// r..r+15 of diagonal d.
func (t *tracker) updateVector(mch vek.Machine, h vek.I16x16, r, d int) {
	if !t.needPos {
		t.vMax = mch.Max16(t.vMax, h)
		return
	}
	gt := mch.CmpGt16(h, t.bestV)
	if mch.MoveMask16(gt) == 0 {
		return
	}
	// Rare path: some lane beats the current best; find it scalar-ly.
	for l := 0; l < lanes16; l++ {
		if int32(h[l]) > t.best {
			t.best = int32(h[l])
			row := r + l
			t.endQ = row - 1
			t.endD = d - row - 1
		}
	}
	mch.T.Add(vek.OpScalar, vek.W256, lanes16)
	t.bestV = mch.Splat16(int16(clampI32(t.best, 32767)))
}

// updateScalar folds one scalar cell value.
func (t *tracker) updateScalar(h int32, i, d int) {
	if h > t.best {
		t.best = h
		if t.needPos {
			t.endQ = i - 1
			t.endD = d - i - 1
		}
	}
}

// finish reduces the deferred maxima and fills the result.
func (t *tracker) finish(mch vek.Machine, res *aln.ScoreResult, ceiling int32) {
	if !t.needPos {
		if v := int32(mch.ReduceMax16(t.vMax)); v > t.best {
			t.best = v
		}
	}
	res.Score = t.best
	res.EndQ, res.EndD = t.endQ, t.endD
	if t.best >= ceiling {
		res.Saturated = true
	}
	if t.best == 0 {
		res.EndQ, res.EndD = -1, -1
	}
}

func clampI32(v, hi int32) int32 {
	if v > hi {
		return hi
	}
	return v
}

// eagerReduce is the §III-D ablation: reduce every vector immediately
// instead of keeping per-lane maxima.
func eagerReduce(mch vek.Machine, t *tracker, h vek.I16x16) {
	v := int32(mch.ReduceMax16(h))
	mch.T.Add(vek.OpScalar, vek.W256, 1)
	if v > t.best {
		t.best = v
	}
}

func alignPair16Affine(mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, opt PairOptions) (aln.ScoreResult, *TraceMatrix, error) {
	res := aln.ScoreResult{EndQ: -1, EndD: -1}
	m, n := len(q), len(dseq)
	st := newPairState16(mch, q, dseq, mat)
	var tb *TraceMatrix
	if opt.Traceback {
		tb = newTraceMatrix(m, n)
	}
	trk := newTracker(mch, opt.Traceback || opt.TrackPosition)
	open16 := int16(clampI32(opt.Gaps.Open, 32767))
	ext16 := int16(clampI32(opt.Gaps.Extend, 32767))
	openV := mch.Splat16(open16)
	extV := mch.Splat16(ext16)
	zeroV := mch.Zero16()
	oneV := mch.Splat16(tbDiag)
	twoV := mch.Splat16(tbLeft)
	threeV := mch.Splat16(tbUp)
	fourV := mch.Splat16(tbEExtend)
	eightV := mch.Splat16(tbFExtend)
	thr := opt.scalarThreshold(lanes16)

	for d := 2; d <= m+n; d++ {
		lo, hi := diagBounds(d, m, n)
		segLen := hi - lo + 1
		var tbDiagSlice []int8
		if tb != nil {
			tbDiagSlice = tb.diagSlice(d)
		}
		if segLen < thr {
			for i := lo; i <= hi; i++ {
				st.scalarCellAffine(mch, q, dseq, mat, &opt, trk, tbDiagSlice, d, i, lo)
			}
			st.rotate(mch, d)
			continue
		}
		r := lo
		for ; r+lanes16 <= hi+1; r += lanes16 {
			score := st.scoreVec(mch, d, r)

			up := mch.Load16(st.hPrev[r-1:])
			left := mch.Load16(st.hPrev[r:])
			diagv := mch.Load16(st.hPrev2[r-1:])
			eIn := mch.Load16(st.ePrev[r:])
			fIn := mch.Load16(st.fPrev[r-1:])

			eExtPart := mch.SubSat16(eIn, extV)
			eOpenPart := mch.SubSat16(left, openV)
			e := mch.Max16(eExtPart, eOpenPart)
			fExtPart := mch.SubSat16(fIn, extV)
			fOpenPart := mch.SubSat16(up, openV)
			f := mch.Max16(fExtPart, fOpenPart)

			h0 := mch.AddSat16(diagv, score)
			h := mch.Max16(h0, zeroV)
			h = mch.Max16(h, e)
			h = mch.Max16(h, f)

			mch.Store16(st.hCur[r:], h)
			mch.Store16(st.eCur[r:], e)
			mch.Store16(st.fCur[r:], f)
			if opt.RowMajorLayout {
				// Ablation: a row-major layout turns the three diagonal
				// stores and five diagonal loads into strided scalar
				// traffic (Fig. 2 comparison).
				mch.T.Add(vek.OpScalarLoad, vek.W256, 5*lanes16)
				mch.T.Add(vek.OpScalarStore, vek.W256, 3*lanes16)
			}

			if opt.EagerMax {
				eagerReduce(mch, trk, h)
			} else {
				trk.updateVector(mch, h, r, d)
			}

			if tb != nil {
				eExt := mch.CmpGt16(eExtPart, eOpenPart)
				fExt := mch.CmpGt16(fExtPart, fOpenPart)
				dir := dirEncode(mch, h, h0, e, zeroV, oneV, twoV, threeV)
				dir = mch.Or16(dir, mch.And16(eExt, fourV))
				dir = mch.Or16(dir, mch.And16(fExt, eightV))
				packed := mch.Narrow16To8(dir, zeroV)
				mch.Store8Partial(tbDiagSlice[r-lo:r-lo+lanes16], packed)
			}
		}
		if tail := hi - r + 1; tail > 0 {
			if opt.ScalarTail {
				for i := r; i <= hi; i++ {
					st.scalarCellAffine(mch, q, dseq, mat, &opt, trk, tbDiagSlice, d, i, lo)
				}
			} else {
				st.paddedTailAffine(mch, &opt, trk, tbDiagSlice, d, r, hi, lo, openV, extV)
			}
		}
		st.rotate(mch, d)
	}
	trk.finish(mch, &res, int32(sat16))
	return res, tb, nil
}

// scalarCellAffine computes one cell with scalar instructions,
// matching the vector path bit for bit (including saturation).
func (st *pairState16) scalarCellAffine(mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, opt *PairOptions, trk *tracker, tbSlice []int8, d, i, lo int) {
	j := d - i
	sc := int32(mat.Score(q[i-1], dseq[j-1]))
	eExtPart := satSub16(int32(st.ePrev[i]), opt.Gaps.Extend)
	eOpenPart := satSub16(int32(st.hPrev[i]), opt.Gaps.Open)
	e := maxI32(eExtPart, eOpenPart)
	fExtPart := satSub16(int32(st.fPrev[i-1]), opt.Gaps.Extend)
	fOpenPart := satSub16(int32(st.hPrev[i-1]), opt.Gaps.Open)
	f := maxI32(fExtPart, fOpenPart)
	h0 := satAdd16(int32(st.hPrev2[i-1]), sc)
	h := maxI32(maxI32(h0, 0), maxI32(e, f))
	st.hCur[i] = int16(h)
	st.eCur[i] = int16(e)
	st.fCur[i] = int16(f)
	trk.updateScalar(h, i, d)
	mch.T.Add(vek.OpScalar, vek.W256, 10)
	mch.T.Add(vek.OpScalarLoad, vek.W256, 6)
	mch.T.Add(vek.OpScalarStore, vek.W256, 3)
	if tbSlice != nil {
		var dir uint8
		switch {
		case h == 0:
			dir = tbStop
		case h == h0:
			dir = tbDiag
		case h == e:
			dir = tbLeft
		default:
			dir = tbUp
		}
		if eExtPart > eOpenPart {
			dir |= tbEExtend
		}
		if fExtPart > fOpenPart {
			dir |= tbFExtend
		}
		tbSlice[i-lo] = int8(dir)
		mch.T.Add(vek.OpScalarStore, vek.W256, 1)
	}
}

// paddedTailAffine processes the final partial vector of a diagonal
// with zero padding (§III-B, Fig. 3): partial loads bring in the valid
// lanes, padded lanes compute garbage that the partial stores and the
// masked maximum discard.
func (st *pairState16) paddedTailAffine(mch vek.Machine, opt *PairOptions, trk *tracker, tbSlice []int8, d, r, hi, lo int, openV, extV vek.I16x16) {
	valid := hi - r + 1
	score := st.scoreVecPartial(mch, d, r, valid)

	up := mch.Load16Partial(st.hPrev[r-1 : r-1+valid])
	left := mch.Load16Partial(st.hPrev[r : r+valid])
	diagv := mch.Load16Partial(st.hPrev2[r-1 : r-1+valid])
	// E/F padded lanes must read -inf, not zero, so they cannot win
	// the max; load full vectors (the buffers have slack) and rely on
	// the partial stores to drop the padded lanes.
	eIn := mch.Load16(st.ePrev[r:])
	fIn := mch.Load16(st.fPrev[r-1:])

	eExtPart := mch.SubSat16(eIn, extV)
	eOpenPart := mch.SubSat16(left, openV)
	e := mch.Max16(eExtPart, eOpenPart)
	fExtPart := mch.SubSat16(fIn, extV)
	fOpenPart := mch.SubSat16(up, openV)
	f := mch.Max16(fExtPart, fOpenPart)

	zeroV := mch.Zero16()
	h0 := mch.AddSat16(diagv, score)
	h := mch.Max16(h0, zeroV)
	h = mch.Max16(h, e)
	h = mch.Max16(h, f)
	// Mask padded lanes to zero before folding into the maximum.
	hMasked := h
	for l := valid; l < lanes16; l++ {
		hMasked[l] = 0
	}
	mch.T.Add(vek.OpLogic, vek.W256, 1) // the lane mask

	mch.Store16Partial(st.hCur[r:r+valid], h)
	mch.Store16Partial(st.eCur[r:r+valid], e)
	mch.Store16Partial(st.fCur[r:r+valid], f)

	if opt.EagerMax {
		eagerReduce(mch, trk, hMasked)
	} else {
		trk.updateVector(mch, hMasked, r, d)
	}
	if tbSlice != nil {
		oneV := mch.Splat16(tbDiag)
		twoV := mch.Splat16(tbLeft)
		threeV := mch.Splat16(tbUp)
		eExt := mch.CmpGt16(eExtPart, eOpenPart)
		fExt := mch.CmpGt16(fExtPart, fOpenPart)
		dir := dirEncode(mch, h, h0, e, zeroV, oneV, twoV, threeV)
		dir = mch.Or16(dir, mch.And16(eExt, mch.Splat16(tbEExtend)))
		dir = mch.Or16(dir, mch.And16(fExt, mch.Splat16(tbFExtend)))
		packed := mch.Narrow16To8(dir, zeroV)
		mch.Store8Partial(tbSlice[r-lo:r-lo+valid], packed)
	}
}

// dirEncode builds the 2-bit direction codes from the cell values
// with mask arithmetic only — compares, ANDs and ORs — because
// vpblendvb costs two port-5 uops on the older architectures and the
// direction encode must stay hidden under the kernel's load/gather
// bottleneck (the Fig. 8 "traceback is free" effect). Priority is
// diag > left > up, with H==0 overriding everything to "stop"; "up"
// needs no compare because H always equals one of its four sources.
func dirEncode(mch vek.Machine, h, h0, e, zeroV, oneV, twoV, threeV vek.I16x16) vek.I16x16 {
	maskD := mch.CmpEq16(h, h0)
	maskE := mch.CmpEq16(h, e)
	maskZ := mch.CmpEq16(h, zeroV)
	dM := mch.And16(maskD, oneV)
	dE := mch.And16(mch.AndNot16(maskE, maskD), twoV)
	dF := mch.AndNot16(threeV, mch.Or16(maskD, maskE))
	dir := mch.Or16(mch.Or16(dM, dE), dF)
	return mch.AndNot16(dir, maskZ)
}

// clip32 returns s[off : off+want] clipped to at most want (>=0)
// elements, for the partial-load tails.
func clip32(s []int32, off, want int) []int32 {
	if want < 0 {
		want = 0
	}
	if off >= len(s) {
		return nil
	}
	end := off + want
	if end > len(s) {
		end = len(s)
	}
	return s[off:end]
}

func satAdd16(a, b int32) int32 {
	v := a + b
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return v
}

func satSub16(a, b int32) int32 {
	return satAdd16(a, -b)
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
