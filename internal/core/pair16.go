package core

import (
	"swvec/internal/aln"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// lanes16 is the lane count of the 256-bit 16-bit kernel.
const lanes16 = 16

// AlignPair16 aligns encoded query q against encoded database sequence
// dseq with the paper's 16-bit wavefront kernel: anti-diagonal
// vectorization (16 cells per instruction), substitution scores fetched
// by 32-bit gathers into the reorganized flat matrix, diagonal-indexed
// rolling buffers, zero-padded or scalar tails for short segments, and
// the deferred per-lane maximum of §III-D. It instantiates the generic
// lane engine at 16 bits x 16 lanes; Open == Extend selects the
// reduced linear-gap variant (Fig. 7).
//
// When opt.Traceback is set the returned TraceMatrix holds one
// direction byte per cell in diagonal-linearized storage and the
// result carries the end coordinates; otherwise the trace is nil and,
// unless opt.TrackPosition is set, EndQ/EndD are -1 (the deferred
// maximum intentionally discards positions until the final reduction).
func AlignPair16(mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, opt PairOptions) (aln.ScoreResult, *TraceMatrix, error) {
	if err := checkPair(q, dseq, &opt); err != nil {
		return aln.ScoreResult{EndQ: -1, EndD: -1}, nil, err
	}
	// The striped family is score-only and affine-only; anything that
	// needs positions, a trace, a diagonal-only ablation, or the linear
	// gap model stays on the diagonal kernel.
	if opt.Kernel.Striped() && !opt.Gaps.IsLinear() && !opt.Traceback && !opt.TrackPosition && !opt.EagerMax && !opt.RowMajorLayout {
		if opt.Backend == BackendNative {
			return nativeStripedPair16(q, dseq, mat, &opt, vek.E16x16{}.Lanes()), nil, nil
		}
		return alignStriped[vek.I16x16, int16](vek.E16x16{}, mch, q, dseq, mat, &opt, stripedState16(opt.Scratch)), nil, nil
	}
	if opt.Backend == BackendNative && !opt.Traceback && !opt.EagerMax {
		return nativePair16(q, dseq, mat, &opt), nil, nil
	}
	bufs := &pairBufs[int16]{}
	if opt.Scratch != nil {
		bufs = &opt.Scratch.pair16
	}
	if opt.Gaps.IsLinear() {
		return alignPairLinear[vek.I16x16, int16](vek.E16x16{}, mch, q, dseq, mat, opt, bufs)
	}
	return alignPairAffine[vek.I16x16, int16](vek.E16x16{}, mch, q, dseq, mat, opt, bufs)
}
