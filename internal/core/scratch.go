package core

import (
	"swvec/internal/aln"
	"swvec/internal/submat"
)

// A Scratch holds the reusable working buffers of the batch engines
// and the pair kernels' escalation tier: the transposed-residue int8
// conversion, the DP column state, the per-row block carries, the
// §III-C per-code score rows, and the 32-bit pair kernel's diagonal
// buffers. One Scratch belongs to one worker goroutine — it is not
// safe for concurrent use — and threading it through
// BatchOptions.Scratch / PairOptions.Scratch makes the steady-state
// search hot path allocation-free: every buffer grows to the largest
// size seen and is then reused verbatim. The batch buffers are sized
// by the batch's actual lane count, so one Scratch serves both the
// 256-bit (32-lane) and 512-bit (64-lane) engines.
//
// A nil Scratch keeps the allocate-per-call behavior, so the zero
// options remain valid.
type Scratch struct {
	// t8 holds the batch's transposed residue matrix as int8 lanes.
	t8 []int8
	// score is the per-code substitution score cache of §III-C.
	score batchScratch
	// hRow8/fRow8 are the 8-bit batch engines' column state (H and F
	// rows, flattened with the batch's lane stride).
	hRow8, fRow8 []int8
	// hRow16/fRow16 are the 16-bit batch engines' column state.
	hRow16, fRow16 []int16
	// carryE8/carryL8/carryD8 are the 8-bit engines' per-query-row
	// carries across column blocks (E, H-left, H-diagonal), flattened
	// with the batch's lane stride.
	carryE8, carryL8, carryD8 []int8
	// carryE16/carryL16/carryD16 are the 16-bit engines' carries.
	carryE16, carryL16, carryD16 []int16
	// pair8/pair16/pair32 hold the modeled pair kernels' diagonal
	// buffers per element width (the 256- and 512-bit builds of a
	// width share one set; the buffers are resized and refilled per
	// call).
	pair8  pairBufs[int8]
	pair16 pairBufs[int16]
	pair32 pairBufs[int32]
	// nph/npf are the native pair kernels' H/F rows per element width.
	nph8, npf8   []int8
	nph16, npf16 []int16
	nph32, npf32 []int32
	// prof8 caches the 8-bit query profile keyed by (matrix, query
	// contents, gap penalties): the modeled 8-bit pair path rebuilds it
	// per call otherwise, and repeated queries — the server's common
	// case — make rebuilding pure waste. profQuery is a private copy,
	// since callers reuse their encode buffers.
	prof8       *submat.Profile8
	profMat     *submat.Matrix
	profQuery   []uint8
	profGaps    aln.Gaps
	profileHits int64
	// sp8/sp16 are the striped kernel family's per-element-width state:
	// the cached striped query profile plus the H/E column rows. Both
	// register widths of one element width share a state, exactly like
	// pair8/pair16 above.
	sp8  stripedState[int8]
	sp16 stripedState[int16]
	// laneSeq is the batch striped path's per-lane sequence extraction
	// buffer (one lane's residues gathered out of the transposed batch).
	laneSeq []uint8
}

// TakeProfileCacheHits returns the number of query-profile cache hits
// since the last call and resets the counter. Workers fold it into
// their metrics at exit.
func (s *Scratch) TakeProfileCacheHits() int64 {
	n := s.profileHits
	s.profileHits = 0
	return n
}

// NewScratch returns an empty scratch whose buffers grow on first use
// and are retained across calls.
func NewScratch() *Scratch { return &Scratch{} }

// codes reinterprets the batch's residue codes (0..31) as int8 lanes,
// reusing the scratch buffer. A nil scratch allocates.
func (s *Scratch) codes(t []uint8) []int8 {
	if s == nil {
		return codesAsInt8(t)
	}
	if cap(s.t8) < len(t) {
		//swlint:ignore hotpathalloc grow-once scratch arena, warm calls reuse capacity
		s.t8 = make([]int8, len(t))
	}
	s.t8 = s.t8[:len(t)]
	for i, c := range t {
		s.t8[i] = int8(c)
	}
	return s.t8
}

// growE returns *p resized to n entries without initializing them,
// reusing capacity.
func growE[E any](p *[]E, n int) []E {
	b := *p
	if cap(b) < n {
		//swlint:ignore hotpathalloc grow-once scratch arena, warm calls reuse capacity
		b = make([]E, n)
	} else {
		b = b[:n]
	}
	*p = b
	return b
}

// carryBufsE returns three per-query-row carry buffers of m rows with
// the given lane stride, with the H carries zeroed; the caller
// initializes the E carries to its -inf value. The carries model
// register spills at block boundaries, so their traffic is uncharged.
func carryBufsE[E any](pe, pl, pd *[]E, m, stride int) (e, left, diag []E) {
	need := m * stride
	e = growE(pe, need)
	left = growE(pl, need)
	diag = growE(pd, need)
	var zero E
	for i := 0; i < need; i++ {
		left[i] = zero
		diag[i] = zero
	}
	return e, left, diag
}

// rowBufsE returns the H/F column-state rows for a batch of MaxLen n
// with the given lane stride, zero-initialized (H) and filled with
// negInf (F, affine only).
func rowBufsE[E any](ph, pf *[]E, n, stride int, affine bool, negInf E) (h, f []E) {
	need := n * stride
	h = growE(ph, need)
	f = growE(pf, need)
	var zero E
	for i := range h {
		h[i] = zero
	}
	if affine {
		for i := range f {
			f[i] = negInf
		}
	}
	return h, f
}

// codesAsInt8 reinterprets residue codes (0..31) as int8 lanes.
func codesAsInt8(codes []uint8) []int8 {
	//swlint:ignore hotpathalloc nil-scratch fallback, the pipeline always passes a scratch
	out := make([]int8, len(codes))
	for i, c := range codes {
		out[i] = int8(c)
	}
	return out
}

// buf32 returns *p resized to n entries, every entry set to fill.
func buf32(p *[]int32, n int, fill int32) []int32 {
	b := *p
	if cap(b) < n {
		//swlint:ignore hotpathalloc grow-once index buffer, warm calls reuse capacity
		b = make([]int32, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = fill
	}
	*p = b
	return b
}
