package core

import (
	"swvec/internal/vek"
)

// A Scratch holds the reusable working buffers of the batch engines
// and the 32-bit pair kernel: the transposed-residue int8 conversion,
// the DP column state, the per-row block carries, the §III-C per-code
// score rows, and the 32-bit kernel's diagonal buffers. One Scratch
// belongs to one worker goroutine — it is not safe for concurrent use —
// and threading it through BatchOptions.Scratch / PairOptions.Scratch
// makes the steady-state search hot path allocation-free: every buffer
// grows to the largest size seen and is then reused verbatim.
//
// A nil Scratch keeps the allocate-per-call behavior, so the zero
// options remain valid.
type Scratch struct {
	// t8 holds the batch's transposed residue matrix as int8 lanes.
	t8 []int8
	// state is the 8-bit engine's column state (H and F rows).
	state batchState
	// score is the per-code substitution score cache of §III-C.
	score batchScratch
	// eCarry/hLeftCarry/hDiagCarry are the 8-bit engine's per-query-row
	// carries across column blocks.
	eCarry, hLeftCarry, hDiagCarry []vek.I8x32
	// hRow16/fRow16 are the 16-bit batch engine's column state.
	hRow16, fRow16 []int16
	// pair32 holds the 32-bit pair kernel's diagonal buffers.
	pair32 pair32Scratch
}

// NewScratch returns an empty scratch whose buffers grow on first use
// and are retained across calls.
func NewScratch() *Scratch { return &Scratch{} }

// codes reinterprets the batch's residue codes (0..31) as int8 lanes,
// reusing the scratch buffer. A nil scratch allocates.
func (s *Scratch) codes(t []uint8) []int8 {
	if s == nil {
		return codesAsInt8(t)
	}
	if cap(s.t8) < len(t) {
		s.t8 = make([]int8, len(t))
	}
	s.t8 = s.t8[:len(t)]
	for i, c := range t {
		s.t8[i] = int8(c)
	}
	return s.t8
}

// carryBufs returns the three per-query-row carry buffers for a query
// of length m, with the H carries zeroed; the caller initializes the E
// carries to its -inf value.
func (s *Scratch) carryBufs(m int) (e, left, diag []vek.I8x32) {
	if cap(s.eCarry) < m {
		s.eCarry = make([]vek.I8x32, m)
		s.hLeftCarry = make([]vek.I8x32, m)
		s.hDiagCarry = make([]vek.I8x32, m)
	}
	e = s.eCarry[:m]
	left = s.hLeftCarry[:m]
	diag = s.hDiagCarry[:m]
	var zero vek.I8x32
	for i := 0; i < m; i++ {
		left[i] = zero
		diag[i] = zero
	}
	return e, left, diag
}

// rows16 returns the 16-bit engine's column-state rows for a batch of
// MaxLen n, zero-initialized (H) and -inf-initialized (F, affine only).
func (s *Scratch) rows16(n int, linear bool) (h, f []int16) {
	need := n * lanes8
	if cap(s.hRow16) < need {
		s.hRow16 = make([]int16, need)
		s.fRow16 = make([]int16, need)
	} else {
		s.hRow16 = s.hRow16[:need]
		s.fRow16 = s.fRow16[:need]
		for i := range s.hRow16 {
			s.hRow16[i] = 0
		}
	}
	if !linear {
		for i := range s.fRow16 {
			s.fRow16[i] = negInf16
		}
	}
	return s.hRow16, s.fRow16
}

// pair32Scratch bundles the 32-bit pair kernel's rolling diagonal
// buffers and index vectors so the stage-3 rescue loop reuses them.
type pair32Scratch struct {
	h    [3][]int32
	e, f [2][]int32
	qMul []int32
	dRev []int32
}

// buf32 returns *p resized to n entries, every entry set to fill.
func buf32(p *[]int32, n int, fill int32) []int32 {
	b := *p
	if cap(b) < n {
		b = make([]int32, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = fill
	}
	*p = b
	return b
}
