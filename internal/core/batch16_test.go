package core

import (
	"testing"

	"swvec/internal/aln"
	"swvec/internal/baselines"
	"swvec/internal/seqio"
	"swvec/internal/vek"
)

func TestBatch16MatchesScalarPerLane(t *testing.T) {
	g := seqio.NewGenerator(141)
	seqs, batch := makeBatch(t, g, 32, false)
	query := g.Protein("q", 90).Encode(protAlpha)
	gaps := aln.DefaultGaps()
	res, err := AlignBatch16(vek.Bare, query, b62Tables, batch, BatchOptions{Gaps: gaps})
	if err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < batch.Count; lane++ {
		d := seqs[batch.Index[lane]].Encode(protAlpha)
		want := baselines.ScalarAffine(query, d, b62, gaps).Score
		if res.Scores[lane] != want {
			t.Fatalf("lane %d: %d, want %d", lane, res.Scores[lane], want)
		}
		if res.Saturated[lane] {
			t.Fatalf("lane %d: spurious 16-bit saturation", lane)
		}
	}
}

func TestBatch16HandlesScoresBeyond8Bit(t *testing.T) {
	// The whole point of the tier: homologs whose scores exceed 127.
	g := seqio.NewGenerator(142)
	query := g.Protein("q", 500)
	seqs := g.Database(28)
	for k := 0; k < 4; k++ {
		seqs = append(seqs, g.Related(query, "h", 0.05, 0.01))
	}
	batch := seqio.BuildBatches(seqs, protAlpha, seqio.BatchOptions{})[0]
	qEnc := query.Encode(protAlpha)
	res, err := AlignBatch16(vek.Bare, qEnc, b62Tables, batch, BatchOptions{Gaps: aln.DefaultGaps()})
	if err != nil {
		t.Fatal(err)
	}
	sawBig := false
	for lane := 0; lane < batch.Count; lane++ {
		d := seqs[batch.Index[lane]].Encode(protAlpha)
		want := baselines.ScalarAffine(qEnc, d, b62, aln.DefaultGaps()).Score
		if res.Scores[lane] != want {
			t.Fatalf("lane %d: %d, want %d", lane, res.Scores[lane], want)
		}
		if want > 127 {
			sawBig = true
		}
	}
	if !sawBig {
		t.Fatal("test vacuous: no lane above the 8-bit ceiling")
	}
}

func TestBatch16LinearMatchesScalar(t *testing.T) {
	g := seqio.NewGenerator(143)
	seqs, batch := makeBatch(t, g, 20, true)
	query := g.Protein("q", 70).Encode(protAlpha)
	gaps := aln.Linear(4)
	res, err := AlignBatch16(vek.Bare, query, b62Tables, batch, BatchOptions{Gaps: gaps})
	if err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < batch.Count; lane++ {
		d := seqs[batch.Index[lane]].Encode(protAlpha)
		want := baselines.ScalarLinear(query, d, b62, 4).Score
		if res.Scores[lane] != want {
			t.Fatalf("lane %d: %d, want %d", lane, res.Scores[lane], want)
		}
	}
}

func TestBatch16Errors(t *testing.T) {
	g := seqio.NewGenerator(144)
	_, batch := makeBatch(t, g, 8, false)
	if _, err := AlignBatch16(vek.Bare, nil, b62Tables, batch, BatchOptions{Gaps: aln.DefaultGaps()}); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := AlignBatch16(vek.Bare, []uint8{1}, b62Tables, &seqio.Batch{}, BatchOptions{Gaps: aln.DefaultGaps()}); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := AlignBatch16(vek.Bare, []uint8{1}, b62Tables, batch, BatchOptions{Gaps: aln.Gaps{}}); err == nil {
		t.Error("invalid gaps accepted")
	}
}
