package core

import (
	"testing"

	"swvec/internal/aln"
	"swvec/internal/baselines"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

func multiQueries(g *seqio.Generator, lens ...int) [][]uint8 {
	out := make([][]uint8, len(lens))
	for i, n := range lens {
		out[i] = g.Protein("q", n).Encode(protAlpha)
	}
	return out
}

func TestBatch8MultiMatchesSingle(t *testing.T) {
	g := seqio.NewGenerator(121)
	_, batch := makeBatch(t, g, 32, true)
	queries := multiQueries(g, 35, 64, 110, 190)
	gaps := aln.DefaultGaps()

	multi, err := AlignBatch8Multi(vek.Bare, queries, b62Tables, batch, BatchOptions{Gaps: gaps})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		single, err := AlignBatch8(vek.Bare, q, b62Tables, batch, BatchOptions{Gaps: gaps})
		if err != nil {
			t.Fatal(err)
		}
		if multi[qi].Scores != single.Scores {
			t.Fatalf("query %d: multi scores diverge from single", qi)
		}
		if multi[qi].Saturated != single.Saturated {
			t.Fatalf("query %d: saturation flags diverge", qi)
		}
	}
}

func TestBatch8MultiLinearMatchesSingle(t *testing.T) {
	g := seqio.NewGenerator(122)
	_, batch := makeBatch(t, g, 20, false)
	queries := multiQueries(g, 40, 90)
	gaps := aln.Linear(2)
	multi, err := AlignBatch8Multi(vek.Bare, queries, b62Tables, batch, BatchOptions{Gaps: gaps})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		single, err := AlignBatch8(vek.Bare, q, b62Tables, batch, BatchOptions{Gaps: gaps})
		if err != nil {
			t.Fatal(err)
		}
		if multi[qi].Scores != single.Scores {
			t.Fatalf("query %d: linear multi diverges", qi)
		}
	}
}

func TestBatch8MultiBlockedMatchesSingle(t *testing.T) {
	g := seqio.NewGenerator(123)
	_, batch := makeBatch(t, g, 32, true)
	queries := multiQueries(g, 50, 77)
	gaps := aln.DefaultGaps()
	multi, err := AlignBatch8Multi(vek.Bare, queries, b62Tables, batch,
		BatchOptions{Gaps: gaps, BlockCols: 64})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		single, err := AlignBatch8(vek.Bare, q, b62Tables, batch,
			BatchOptions{Gaps: gaps, BlockCols: 64})
		if err != nil {
			t.Fatal(err)
		}
		if multi[qi].Scores != single.Scores {
			t.Fatalf("query %d: blocked multi diverges", qi)
		}
	}
}

func TestBatch8MultiSavesScratchWork(t *testing.T) {
	// The scenario-2 lever: shared scratch means fewer shuffle issues
	// than running the queries separately.
	g := seqio.NewGenerator(124)
	_, batch := makeBatch(t, g, 32, true)
	queries := multiQueries(g, 60, 60, 60, 60, 60, 60)
	gaps := aln.DefaultGaps()

	mM, tM := vek.NewMachine()
	if _, err := AlignBatch8Multi(mM, queries, b62Tables, batch, BatchOptions{Gaps: gaps}); err != nil {
		t.Fatal(err)
	}
	mS, tS := vek.NewMachine()
	for _, q := range queries {
		if _, err := AlignBatch8(mS, q, b62Tables, batch, BatchOptions{Gaps: gaps}); err != nil {
			t.Fatal(err)
		}
	}
	if tM.N256[vek.OpShuffle] >= tS.N256[vek.OpShuffle] {
		t.Errorf("multi shuffles %d should be below separate %d (scratch reuse)",
			tM.N256[vek.OpShuffle], tS.N256[vek.OpShuffle])
	}
	if tM.Total() >= tS.Total() {
		t.Errorf("multi total ops %d should be below separate %d", tM.Total(), tS.Total())
	}
}

func TestBatch8MultiErrors(t *testing.T) {
	g := seqio.NewGenerator(125)
	_, batch := makeBatch(t, g, 8, false)
	q := multiQueries(g, 20)
	if _, err := AlignBatch8Multi(vek.Bare, nil, b62Tables, batch, BatchOptions{Gaps: aln.DefaultGaps()}); err == nil {
		t.Error("no queries accepted")
	}
	if _, err := AlignBatch8Multi(vek.Bare, [][]uint8{nil}, b62Tables, batch, BatchOptions{Gaps: aln.DefaultGaps()}); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := AlignBatch8Multi(vek.Bare, q, b62Tables, &seqio.Batch{}, BatchOptions{Gaps: aln.DefaultGaps()}); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := AlignBatch8Multi(vek.Bare, q, b62Tables, batch, BatchOptions{Gaps: aln.Gaps{Open: 200, Extend: 1}}); err == nil {
		t.Error("8-bit range violation accepted")
	}
	if _, err := AlignBatch8Multi(vek.Bare, q, b62Tables, batch, BatchOptions{Gaps: aln.Gaps{}}); err == nil {
		t.Error("invalid gaps accepted")
	}
}

func TestPair16FixedScorePathMatchesScalar(t *testing.T) {
	// The compare-and-blend fast path of the 16-bit kernel (Fig. 9's
	// "without substitution matrix" series).
	mm := submatMatchMismatch(t)
	g := seqio.NewGenerator(126)
	gaps := aln.Gaps{Open: 4, Extend: 1}
	for trial := 0; trial < 15; trial++ {
		q := g.Protein("q", 20+trial*13).Encode(protAlpha)
		d := g.Protein("d", 30+trial*17).Encode(protAlpha)
		want := baselinesScalar(q, d, mm, gaps)
		got, _, err := AlignPair16(vek.Bare, q, d, mm, PairOptions{Gaps: gaps})
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want {
			t.Fatalf("trial %d: fixed-path score %d, want %d", trial, got.Score, want)
		}
	}
	// The fast path must not gather.
	q := g.Protein("q", 100).Encode(protAlpha)
	d := g.Protein("d", 200).Encode(protAlpha)
	mch, tal := vek.NewMachine()
	if _, _, err := AlignPair16(mch, q, d, mm, PairOptions{Gaps: gaps}); err != nil {
		t.Fatal(err)
	}
	if tal.N256[vek.OpGather32] != 0 {
		t.Error("fixed-score path must not gather")
	}
	if tal.N256[vek.OpCmpEq8] == 0 {
		t.Error("fixed-score path should use compare-and-blend")
	}
}

func TestPair16FixedTracebackRescores(t *testing.T) {
	mm := submatMatchMismatch(t)
	g := seqio.NewGenerator(127)
	src := g.Protein("s", 90)
	rel := g.Related(src, "r", 0.15, 0.05)
	q, d := src.Encode(protAlpha), rel.Encode(protAlpha)
	gaps := aln.Gaps{Open: 4, Extend: 1}
	res, tb, err := AlignPair16(vek.Bare, q, d, mm, PairOptions{Gaps: gaps, Traceback: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score == 0 {
		t.Skip("no alignment")
	}
	a, err := tb.Walk(res.EndQ, res.EndD, res.Score)
	if err != nil {
		t.Fatal(err)
	}
	got, err := aln.Rescore(a, q, d, func(qc, dc uint8) int32 { return int32(mm.Score(qc, dc)) }, gaps)
	if err != nil {
		t.Fatal(err)
	}
	if got != res.Score {
		t.Fatalf("rescore %d, want %d", got, res.Score)
	}
}

// submatMatchMismatch builds the fixed matrix used by the fast-path
// tests.
func submatMatchMismatch(t *testing.T) *submat.Matrix {
	t.Helper()
	return submat.MatchMismatch(protAlpha, 3, -2)
}

// baselinesScalar is a thin wrapper to keep the fast-path test terse.
func baselinesScalar(q, d []uint8, m *submat.Matrix, g aln.Gaps) int32 {
	return baselines.ScalarAffine(q, d, m, g).Score
}
