package core

import (
	"testing"

	"swvec/internal/aln"
	"swvec/internal/baselines"
	"swvec/internal/seqio"
	"swvec/internal/vek"
)

// rescore replays a traceback against the substitution matrix.
func rescore(t *testing.T, a *aln.Alignment, q, d []uint8, g aln.Gaps) int32 {
	t.Helper()
	sc, err := aln.Rescore(a, q, d, func(qc, dc uint8) int32 {
		return int32(b62.Score(qc, dc))
	}, g)
	if err != nil {
		t.Fatalf("rescore: %v", err)
	}
	return sc
}

func alignWithTB(t *testing.T, q, d []uint8, g aln.Gaps) (aln.ScoreResult, *aln.Alignment) {
	t.Helper()
	res, tb, err := AlignPair16(vek.Bare, q, d, b62, PairOptions{Gaps: g, Traceback: true})
	if err != nil {
		t.Fatal(err)
	}
	if tb == nil {
		t.Fatal("traceback requested but not returned")
	}
	a, err := tb.Walk(res.EndQ, res.EndD, res.Score)
	if err != nil {
		t.Fatal(err)
	}
	return res, a
}

func TestTracebackExactMatch(t *testing.T) {
	q := enc("ACDEFGHIKLMNPQRSTVWY")
	res, a := alignWithTB(t, q, q, aln.DefaultGaps())
	if want := baselines.ScalarAffine(q, q, b62, aln.DefaultGaps()).Score; res.Score != want {
		t.Fatalf("score = %d, want %d", res.Score, want)
	}
	if a.CigarString() != "20M" {
		t.Fatalf("cigar = %q, want 20M", a.CigarString())
	}
	if a.BegQ != 0 || a.BegD != 0 || a.EndQ != 19 || a.EndD != 19 {
		t.Fatalf("span = q[%d,%d] d[%d,%d]", a.BegQ, a.EndQ, a.BegD, a.EndD)
	}
	if got := rescore(t, a, q, q, aln.DefaultGaps()); got != res.Score {
		t.Fatalf("rescore = %d, want %d", got, res.Score)
	}
}

func TestTracebackWithGap(t *testing.T) {
	// Query is the database with a 3-residue block deleted: the
	// optimal alignment must contain one deletion run.
	d := enc("MKVLAWGQHEAGAWGHEEKLVV")
	q := append(append([]uint8{}, d[:8]...), d[11:]...)
	g := aln.Gaps{Open: 4, Extend: 1}
	res, a := alignWithTB(t, q, d, g)
	if want := baselines.ScalarAffine(q, d, b62, g).Score; res.Score != want {
		t.Fatalf("score = %d, want %d", res.Score, want)
	}
	if got := rescore(t, a, q, d, g); got != res.Score {
		t.Fatalf("rescore = %d, want %d", got, res.Score)
	}
	hasDelete := false
	for _, op := range a.Cigar {
		if op.Kind == aln.OpDelete && op.Len == 3 {
			hasDelete = true
		}
	}
	if !hasDelete {
		t.Errorf("expected a 3-residue deletion, cigar = %s", a.CigarString())
	}
}

func TestTracebackRandomRescores(t *testing.T) {
	g := seqio.NewGenerator(41)
	gaps := aln.DefaultGaps()
	for trial := 0; trial < 30; trial++ {
		src := g.Protein("s", 40+trial*13)
		rel := g.Related(src, "r", 0.2, 0.06)
		q := src.Encode(protAlpha)
		d := rel.Encode(protAlpha)
		res, a := alignWithTB(t, q, d, gaps)
		want := baselines.ScalarAffine(q, d, b62, gaps)
		if res.Score != want.Score {
			t.Fatalf("trial %d: score %d, want %d", trial, res.Score, want.Score)
		}
		if res.Score == 0 {
			continue
		}
		if got := rescore(t, a, q, d, gaps); got != res.Score {
			t.Fatalf("trial %d: rescore %d, want %d (cigar %s)", trial, got, res.Score, a.CigarString())
		}
		if a.EndQ != res.EndQ || a.EndD != res.EndD {
			t.Fatalf("trial %d: alignment end (%d,%d) != result end (%d,%d)",
				trial, a.EndQ, a.EndD, res.EndQ, res.EndD)
		}
	}
}

func TestTracebackLinearGapRescores(t *testing.T) {
	g := seqio.NewGenerator(42)
	gaps := aln.Linear(2)
	for trial := 0; trial < 20; trial++ {
		src := g.Protein("s", 30+trial*11)
		rel := g.Related(src, "r", 0.15, 0.08)
		q := src.Encode(protAlpha)
		d := rel.Encode(protAlpha)
		res, a := alignWithTB(t, q, d, gaps)
		want := baselines.ScalarLinear(q, d, b62, 2)
		if res.Score != want.Score {
			t.Fatalf("trial %d: score %d, want %d", trial, res.Score, want.Score)
		}
		if res.Score == 0 {
			continue
		}
		if got := rescore(t, a, q, d, gaps); got != res.Score {
			t.Fatalf("trial %d: rescore %d, want %d", trial, got, res.Score)
		}
	}
}

func TestTracebackZeroScore(t *testing.T) {
	q := enc("WWWW")
	d := enc("PPPP")
	res, tb, err := AlignPair16(vek.Bare, q, d, b62, PairOptions{Gaps: aln.DefaultGaps(), Traceback: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := tb.Walk(res.EndQ, res.EndD, res.Score)
	if err != nil {
		t.Fatal(err)
	}
	if a.BegQ != -1 || len(a.Cigar) != 0 {
		t.Fatalf("zero-score walk produced ops: %+v", a)
	}
}

func TestTracebackScalarThresholdInvariance(t *testing.T) {
	// The alignment must rescore correctly whichever mix of vector and
	// scalar cells produced the trace.
	g := seqio.NewGenerator(43)
	src := g.Protein("s", 100)
	rel := g.Related(src, "r", 0.2, 0.05)
	q := src.Encode(protAlpha)
	d := rel.Encode(protAlpha)
	gaps := aln.DefaultGaps()
	for _, thr := range []int{1, 8, 64} {
		res, tb, err := AlignPair16(vek.Bare, q, d, b62,
			PairOptions{Gaps: gaps, Traceback: true, ScalarThreshold: thr})
		if err != nil {
			t.Fatal(err)
		}
		a, err := tb.Walk(res.EndQ, res.EndD, res.Score)
		if err != nil {
			t.Fatal(err)
		}
		if got := rescore(t, a, q, d, gaps); got != res.Score {
			t.Fatalf("threshold %d: rescore %d, want %d", thr, got, res.Score)
		}
	}
}

func TestTracebackScalarTailRescores(t *testing.T) {
	g := seqio.NewGenerator(44)
	src := g.Protein("s", 77)
	rel := g.Related(src, "r", 0.2, 0.05)
	q := src.Encode(protAlpha)
	d := rel.Encode(protAlpha)
	gaps := aln.DefaultGaps()
	res, tb, err := AlignPair16(vek.Bare, q, d, b62,
		PairOptions{Gaps: gaps, Traceback: true, ScalarTail: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := tb.Walk(res.EndQ, res.EndD, res.Score)
	if err != nil {
		t.Fatal(err)
	}
	if got := rescore(t, a, q, d, gaps); got != res.Score {
		t.Fatalf("rescore %d, want %d", got, res.Score)
	}
}

func TestTraceMatrixBytes(t *testing.T) {
	tb := newTraceMatrix(10, 20)
	if tb.Bytes() != 200 {
		t.Fatalf("bytes = %d, want 200", tb.Bytes())
	}
}

func TestTraceMatrixIndexBijective(t *testing.T) {
	m, n := 7, 11
	tb := newTraceMatrix(m, n)
	seen := make(map[int]bool)
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			idx := tb.index(i, j)
			if idx < 0 || idx >= len(tb.codes) {
				t.Fatalf("index(%d,%d) = %d out of range", i, j, idx)
			}
			if seen[idx] {
				t.Fatalf("index(%d,%d) = %d collides", i, j, idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != m*n {
		t.Fatalf("covered %d cells, want %d", len(seen), m*n)
	}
}

func TestWalkRejectsOutOfRange(t *testing.T) {
	tb := newTraceMatrix(5, 5)
	if _, err := tb.Walk(7, 2, 10); err == nil {
		t.Error("out-of-range walk start accepted")
	}
}

func TestTracebackEndPositionsMatchScalarScoreAt(t *testing.T) {
	// The end cell reported by the kernel must be a true optimum:
	// aligning the prefixes up to it reproduces the score.
	g := seqio.NewGenerator(45)
	q := g.Protein("q", 60).Encode(protAlpha)
	d := g.Protein("d", 90).Encode(protAlpha)
	gaps := aln.DefaultGaps()
	res, _, err := AlignPair16(vek.Bare, q, d, b62, PairOptions{Gaps: gaps, Traceback: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score == 0 {
		t.Skip("no positive alignment in this draw")
	}
	pre := baselines.ScalarAffine(q[:res.EndQ+1], d[:res.EndD+1], b62, gaps)
	if pre.Score != res.Score {
		t.Fatalf("prefix score %d, want %d", pre.Score, res.Score)
	}
}
