package core

import (
	"swvec/internal/aln"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// AlignPair8 aligns one pair with the 8-bit wavefront kernel: 32 cells
// per instruction, affine gaps, deferred per-lane maxima, score-only.
// Scores saturate at 127; callers check Saturated and escalate to
// AlignPair16 (or use AlignPairAdaptive, which does it for them).
//
// Scoring has two paths. With a uniform match/mismatch matrix the
// scores come from a fully vectorized compare-and-blend. With a full
// substitution matrix there is no 8-bit gather on AVX2, so the scores
// are assembled lane by lane from the query profile — the performance
// problem §III-C describes, and the reason the 8-bit database-search
// path uses the batch engine (AlignBatch8) instead.
func AlignPair8(mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, opt PairOptions) (aln.ScoreResult, error) {
	res := aln.ScoreResult{EndQ: -1, EndD: -1}
	if err := checkPair(q, dseq, &opt); err != nil {
		return res, err
	}
	if opt.Gaps.Open > 127 {
		opt.Gaps.Open = 127
	}
	m, n := len(q), len(dseq)
	match, mismatch, fixed := mat.FixedScores()
	if fixed {
		// The compare-and-blend path needs real residue codes: a
		// sentinel matching a sentinel must not score as a match.
		size := uint8(mat.Alphabet().Size())
		for _, c := range q {
			if c >= size {
				fixed = false
				break
			}
		}
		for _, c := range dseq {
			if c >= size {
				fixed = false
				break
			}
		}
	}

	slack := lanes8 + 2
	mk := func(fill int8) []int8 {
		b := make([]int8, m+2+slack)
		if fill != 0 {
			for i := range b {
				b[i] = fill
			}
		}
		return b
	}
	hPrev2, hPrev, hCur := mk(0), mk(0), mk(0)
	ePrev, eCur := mk(negInf8), mk(negInf8)
	fPrev, fCur := mk(negInf8), mk(negInf8)
	// q8[i-1] and dRev8[t] hold residue codes as int8 for the
	// compare path; prof supplies the general path.
	q8 := make([]int8, m+slack)
	for i, c := range q {
		q8[i] = int8(c)
	}
	dRev8 := make([]int8, n+slack)
	for t := 0; t < n; t++ {
		dRev8[t] = int8(dseq[n-1-t])
	}
	var prof *submat.Profile8
	if !fixed {
		prof = submat.NewProfile8(mat, q)
	}
	mch.T.Add(vek.OpScalarStore, vek.W256, uint64(m+n))

	openV := mch.Splat8(int8(clampI32(opt.Gaps.Open, 127)))
	extV := mch.Splat8(int8(clampI32(opt.Gaps.Extend, 127)))
	zeroV := mch.Zero8()
	matchV := mch.Splat8(match)
	mismatchV := mch.Splat8(mismatch)
	vMax := zeroV
	var scalarBest int32
	scoreBuf := make([]int8, lanes8)
	thr := opt.scalarThreshold(lanes8)

	for d := 2; d <= m+n; d++ {
		lo, hi := diagBounds(d, m, n)
		if hi-lo+1 < thr {
			for i := lo; i <= hi; i++ {
				scalarBest = scalarCell8(mch, q, dseq, mat, &opt, scalarBest,
					hPrev2, hPrev, hCur, ePrev, eCur, fPrev, fCur, d, i)
			}
			rotate8(mch, d, m, hCur, eCur, fCur)
			hPrev2, hPrev, hCur = hPrev, hCur, hPrev2
			ePrev, eCur = eCur, ePrev
			fPrev, fCur = fCur, fPrev
			continue
		}
		r := lo
		for ; r+lanes8 <= hi+1; r += lanes8 {
			var score vek.I8x32
			if fixed {
				t0 := n - d + r
				qv := mch.Load8(q8[r-1:])
				dv := mch.Load8(dRev8[t0:])
				eq := mch.CmpEq8(qv, dv)
				score = mch.Blend8(mismatchV, matchV, eq)
			} else {
				// No 8-bit gather exists: assemble the 32 scores with
				// scalar profile lookups.
				for l := 0; l < lanes8; l++ {
					i := r + l
					scoreBuf[l] = prof.Score(i-1, dseq[d-i-1])
				}
				mch.T.Add(vek.OpScalarLoad, vek.W256, lanes8)
				mch.T.Add(vek.OpScalarStore, vek.W256, lanes8)
				score = mch.Load8(scoreBuf)
			}

			up := mch.Load8(hPrev[r-1:])
			left := mch.Load8(hPrev[r:])
			diagv := mch.Load8(hPrev2[r-1:])
			eIn := mch.Load8(ePrev[r:])
			fIn := mch.Load8(fPrev[r-1:])

			e := mch.Max8(mch.SubSat8(eIn, extV), mch.SubSat8(left, openV))
			f := mch.Max8(mch.SubSat8(fIn, extV), mch.SubSat8(up, openV))
			h := mch.AddSat8(diagv, score)
			h = mch.Max8(h, zeroV)
			h = mch.Max8(h, e)
			h = mch.Max8(h, f)

			mch.Store8(hCur[r:], h)
			mch.Store8(eCur[r:], e)
			mch.Store8(fCur[r:], f)
			vMax = mch.Max8(vMax, h)
		}
		for i := r; i <= hi; i++ {
			scalarBest = scalarCell8(mch, q, dseq, mat, &opt, scalarBest,
				hPrev2, hPrev, hCur, ePrev, eCur, fPrev, fCur, d, i)
		}
		rotate8(mch, d, m, hCur, eCur, fCur)
		hPrev2, hPrev, hCur = hPrev, hCur, hPrev2
		ePrev, eCur = eCur, ePrev
		fPrev, fCur = fCur, fPrev
	}
	best := int32(mch.ReduceMax8(vMax))
	if scalarBest > best {
		best = scalarBest
	}
	res.Score = best
	if best >= int32(sat8) {
		res.Saturated = true
	}
	return res, nil
}

func rotate8(mch vek.Machine, d, m int, hCur, eCur, fCur []int8) {
	hCur[0] = 0
	eCur[0], fCur[0] = negInf8, negInf8
	if d <= m {
		hCur[d] = 0
		eCur[d], fCur[d] = negInf8, negInf8
	}
	mch.T.Add(vek.OpScalarStore, vek.W256, 6)
}

func scalarCell8(mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, opt *PairOptions, best int32,
	hPrev2, hPrev, hCur, ePrev, eCur, fPrev, fCur []int8, d, i int) int32 {
	j := d - i
	sc := int32(mat.Score(q[i-1], dseq[j-1]))
	e := maxI32(satSub8(int32(ePrev[i]), opt.Gaps.Extend), satSub8(int32(hPrev[i]), opt.Gaps.Open))
	f := maxI32(satSub8(int32(fPrev[i-1]), opt.Gaps.Extend), satSub8(int32(hPrev[i-1]), opt.Gaps.Open))
	h := maxI32(maxI32(satAdd8(int32(hPrev2[i-1]), sc), 0), maxI32(e, f))
	hCur[i] = int8(h)
	eCur[i] = int8(e)
	fCur[i] = int8(f)
	mch.T.Add(vek.OpScalar, vek.W256, 10)
	mch.T.Add(vek.OpScalarLoad, vek.W256, 6)
	mch.T.Add(vek.OpScalarStore, vek.W256, 3)
	if h > best {
		return h
	}
	return best
}

func satAdd8(a, b int32) int32 {
	v := a + b
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return v
}

func satSub8(a, b int32) int32 { return satAdd8(a, -b) }

// AlignPairAdaptive is the variable-bitwidth driver: run the cheap
// 8-bit kernel first and escalate to 16 bits only when the score
// saturates — the paper's "variable (8/16) bit width implementation" —
// with a final 32-bit tier so even extreme scores stay vectorized.
func AlignPairAdaptive(mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, opt PairOptions) (aln.ScoreResult, *TraceMatrix, error) {
	if !opt.Traceback && !opt.TrackPosition {
		res8, err := AlignPair8(mch, q, dseq, mat, opt)
		if err != nil {
			return res8, nil, err
		}
		if !res8.Saturated {
			return res8, nil, nil
		}
	}
	// Traceback and position tracking live in the 16-bit kernel.
	res16, tb, err := AlignPair16(mch, q, dseq, mat, opt)
	if err != nil || !res16.Saturated {
		return res16, tb, err
	}
	// 16-bit saturation (scores above 32767): rerun at 32 bits.
	// Traceback at such scores is out of the 16-bit trace's range, so
	// the 32-bit tier is score-only.
	res32, err := AlignPair32(mch, q, dseq, mat, opt)
	return res32, nil, err
}
