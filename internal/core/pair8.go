package core

import (
	"swvec/internal/aln"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// pair8Opt normalizes options for the score-only 8-bit pair kernels:
// traceback and position tracking live in the 16-bit kernel, the gap
// penalties must fit the byte range, and the ablation knobs that only
// the 16-bit kernel models are cleared.
func pair8Opt(opt PairOptions) PairOptions {
	if opt.Gaps.Open > 127 {
		opt.Gaps.Open = 127
	}
	if opt.Gaps.Extend > 127 {
		opt.Gaps.Extend = 127
	}
	opt.Traceback = false
	opt.TrackPosition = false
	opt.EagerMax = false
	opt.RowMajorLayout = false
	return opt
}

// AlignPair8 aligns one pair with the 8-bit wavefront kernel: 32 cells
// per instruction, affine gaps, deferred per-lane maxima, score-only.
// Scores saturate at 127; callers check Saturated and escalate to
// AlignPair16 (or use AlignPairAdaptive, which does it for them).
//
// Scoring has two paths. With a uniform match/mismatch matrix the
// scores come from a fully vectorized compare-and-blend. With a full
// substitution matrix there is no 8-bit gather on AVX2, so the scores
// are assembled lane by lane from the query profile — the performance
// problem §III-C describes, and the reason the 8-bit database-search
// path uses the batch engine (AlignBatch8) instead.
func AlignPair8(mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, opt PairOptions) (aln.ScoreResult, error) {
	if err := checkPair(q, dseq, &opt); err != nil {
		return aln.ScoreResult{EndQ: -1, EndD: -1}, err
	}
	opt = pair8Opt(opt)
	if opt.Kernel.Striped() && !opt.Gaps.IsLinear() {
		if opt.Backend == BackendNative {
			return nativeStripedPair8(q, dseq, mat, &opt, vek.E8x32{}.Lanes()), nil
		}
		return alignStriped[vek.I8x32, int8](vek.E8x32{}, mch, q, dseq, mat, &opt, stripedState8(opt.Scratch)), nil
	}
	if opt.Backend == BackendNative {
		return nativePair8(q, dseq, mat, &opt), nil
	}
	// The scalar fallback handles partial tails: at 8 bits the padded
	// tail would spend its masking ops on at most a few lanes' worth
	// of useful work per short diagonal.
	opt.ScalarTail = true
	bufs := &pairBufs[int8]{}
	if opt.Scratch != nil {
		bufs = &opt.Scratch.pair8
	}
	res, _, err := alignPairAffine[vek.I8x32, int8](vek.E8x32{}, mch, q, dseq, mat, opt, bufs)
	return res, err
}

// AlignPair8W is the AVX-512 build of the 8-bit wavefront kernel: the
// same generic engine instantiated at 64 lanes. Like AlignPair16W it
// exists for the 256- vs 512-bit comparison; saturation behavior is
// identical to AlignPair8.
func AlignPair8W(mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, opt PairOptions) (aln.ScoreResult, error) {
	if err := checkPair(q, dseq, &opt); err != nil {
		return aln.ScoreResult{EndQ: -1, EndD: -1}, err
	}
	opt = pair8Opt(opt)
	if opt.Kernel.Striped() && !opt.Gaps.IsLinear() {
		if opt.Backend == BackendNative {
			return nativeStripedPair8(q, dseq, mat, &opt, vek.E8x64{}.Lanes()), nil
		}
		return alignStriped[vek.I8x64, int8](vek.E8x64{}, mch, q, dseq, mat, &opt, stripedState8(opt.Scratch)), nil
	}
	if opt.Backend == BackendNative {
		return nativePair8(q, dseq, mat, &opt), nil
	}
	// At 64 lanes the padded tail wins back far more work than the
	// scalar fallback, so the wide build keeps it.
	opt.ScalarTail = false
	bufs := &pairBufs[int8]{}
	if opt.Scratch != nil {
		bufs = &opt.Scratch.pair8
	}
	res, _, err := alignPairAffine[vek.I8x64, int8](vek.E8x64{}, mch, q, dseq, mat, opt, bufs)
	return res, err
}

// AlignPairAdaptive is the variable-bitwidth driver: run the cheap
// 8-bit kernel first and escalate to 16 bits only when the score
// saturates — the paper's "variable (8/16) bit width implementation" —
// with a final 32-bit tier so even extreme scores stay vectorized.
func AlignPairAdaptive(mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, opt PairOptions) (aln.ScoreResult, *TraceMatrix, error) {
	if !opt.Traceback && !opt.TrackPosition {
		res8, err := AlignPair8(mch, q, dseq, mat, opt)
		if err != nil {
			return res8, nil, err
		}
		if !res8.Saturated {
			return res8, nil, nil
		}
	}
	// Traceback and position tracking live in the 16-bit kernel.
	res16, tb, err := AlignPair16(mch, q, dseq, mat, opt)
	if err != nil || !res16.Saturated {
		return res16, tb, err
	}
	// 16-bit saturation (scores above 32767): rerun at 32 bits.
	// Traceback at such scores is out of the 16-bit trace's range, so
	// the 32-bit tier is score-only.
	res32, err := AlignPair32(mch, q, dseq, mat, opt)
	return res32, nil, err
}
