package core

import (
	"fmt"
	"testing"

	"swvec/internal/aln"
	"swvec/internal/baselines"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// stripedKernels are the two members of the striped family under test;
// every equivalence test crosses them with both backends.
var stripedKernels = []Kernel{KernelStriped, KernelLazyF}

var stripedBackends = []Backend{BackendModeled, BackendNative}

// TestStripedPairMatchesDiagonal sweeps query lengths around every
// segment-count boundary of every lane width, at both element widths
// and on both backends, and requires the striped family to reproduce
// the diagonal kernel's ScoreResult bit for bit — scores, saturation
// flags, and the score-only -1 end positions.
func TestStripedPairMatchesDiagonal(t *testing.T) {
	g := seqio.NewGenerator(71)
	qlens := []int{1, 3, 15, 16, 17, 31, 32, 33, 63, 64, 65, 129, 300}
	dlens := []int{1, 37, 180}
	gapsList := []aln.Gaps{
		{Open: 11, Extend: 1},
		{Open: 2, Extend: 1},
		{Open: 20, Extend: 15},
	}
	for _, ql := range qlens {
		q := g.Protein(fmt.Sprintf("q%d", ql), ql).Encode(protAlpha)
		for _, dl := range dlens {
			d := g.Protein(fmt.Sprintf("d%d-%d", ql, dl), dl).Encode(protAlpha)
			for _, gaps := range gapsList {
				opt := PairOptions{Gaps: gaps}
				want8, err := AlignPair8(vek.Bare, q, d, b62, opt)
				if err != nil {
					t.Fatal(err)
				}
				want8w, err := AlignPair8W(vek.Bare, q, d, b62, opt)
				if err != nil {
					t.Fatal(err)
				}
				want16, _, err := AlignPair16(vek.Bare, q, d, b62, opt)
				if err != nil {
					t.Fatal(err)
				}
				want16w, err := AlignPair16W(vek.Bare, q, d, b62, opt)
				if err != nil {
					t.Fatal(err)
				}
				for _, kern := range stripedKernels {
					for _, be := range stripedBackends {
						kopt := PairOptions{Gaps: gaps, Kernel: kern, Backend: be}
						tag := fmt.Sprintf("q%d d%d gaps%+v kernel=%v backend=%v", ql, dl, gaps, kern, be)
						got8, err := AlignPair8(vek.Bare, q, d, b62, kopt)
						if err != nil {
							t.Fatal(err)
						}
						if got8 != want8 {
							t.Fatalf("%s: pair8 %+v != diagonal %+v", tag, got8, want8)
						}
						got8w, err := AlignPair8W(vek.Bare, q, d, b62, kopt)
						if err != nil {
							t.Fatal(err)
						}
						if got8w != want8w {
							t.Fatalf("%s: pair8w %+v != diagonal %+v", tag, got8w, want8w)
						}
						got16, tb, err := AlignPair16(vek.Bare, q, d, b62, kopt)
						if err != nil {
							t.Fatal(err)
						}
						if tb != nil {
							t.Fatalf("%s: striped pair16 returned a traceback", tag)
						}
						if got16 != want16 {
							t.Fatalf("%s: pair16 %+v != diagonal %+v", tag, got16, want16)
						}
						got16w, err := AlignPair16W(vek.Bare, q, d, b62, kopt)
						if err != nil {
							t.Fatal(err)
						}
						if got16w != want16w {
							t.Fatalf("%s: pair16w %+v != diagonal %+v", tag, got16w, want16w)
						}
					}
				}
			}
		}
	}
}

// TestStripedTinyGapOpen pins the deletion-adjacent-insertion case: with
// gap open this cheap, optimal paths can pair a vertical and a
// horizontal gap back to back, which the correction loops only handle
// because they refresh the E row from corrected H cells. Checked
// against the scalar oracle, not just the diagonal kernel.
func TestStripedTinyGapOpen(t *testing.T) {
	g := seqio.NewGenerator(72)
	gaps := aln.Gaps{Open: 2, Extend: 1}
	for i := 0; i < 40; i++ {
		q := g.Protein(fmt.Sprintf("q%d", i), 20+i*7).Encode(protAlpha)
		d := g.Protein(fmt.Sprintf("d%d", i), 30+i*5).Encode(protAlpha)
		want := baselines.ScalarAffine(q, d, b62, gaps)
		for _, kern := range stripedKernels {
			for _, be := range stripedBackends {
				got, _, err := AlignPair16(vek.Bare, q, d, b62, PairOptions{Gaps: gaps, Kernel: kern, Backend: be})
				if err != nil {
					t.Fatal(err)
				}
				if got.Score != want.Score {
					t.Fatalf("case %d kernel=%v backend=%v: score %d != scalar %d", i, kern, be, got.Score, want.Score)
				}
			}
		}
	}
}

// TestStripedLinearGapsRouteToDiagonal: the striped family serves the
// affine model only; a linear-gap request must fall through to the
// diagonal kernel and still be exact.
func TestStripedLinearGapsRouteToDiagonal(t *testing.T) {
	g := seqio.NewGenerator(73)
	q := g.Protein("q", 120).Encode(protAlpha)
	d := g.Protein("d", 150).Encode(protAlpha)
	gaps := aln.Linear(2)
	want := baselines.ScalarLinear(q, d, b62, gaps.Extend)
	for _, kern := range stripedKernels {
		got, _, err := AlignPair16(vek.Bare, q, d, b62, PairOptions{Gaps: gaps, Kernel: kern})
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want.Score {
			t.Fatalf("kernel=%v: linear-gap score %d != scalar %d", kern, got.Score, want.Score)
		}
	}
}

// TestStripedAdaptiveLadder runs the 8->16->32 saturation ladder with a
// striped kernel selected: the 8-bit striped tier must flag saturation
// exactly like the diagonal tier, and the escalations must land on the
// exact score.
func TestStripedAdaptiveLadder(t *testing.T) {
	// A self-alignment long enough to saturate 8 bits (and, at the far
	// end, 16 bits) with BLOSUM62's diagonal.
	alpha := protAlpha
	mk := func(n int) []uint8 {
		s := make([]uint8, n)
		for i := range s {
			s[i] = alpha.EncodeString("W")[0]
		}
		return s
	}
	for _, n := range []int{40, 400, 3200} {
		q := mk(n)
		want := baselines.ScalarAffine(q, q, b62, aln.DefaultGaps())
		for _, kern := range stripedKernels {
			for _, be := range stripedBackends {
				opt := PairOptions{Gaps: aln.DefaultGaps(), Kernel: kern, Backend: be}
				r8, err := AlignPair8(vek.Bare, q, q, b62, opt)
				if err != nil {
					t.Fatal(err)
				}
				if want.Score >= 127 != r8.Saturated {
					t.Fatalf("n=%d kernel=%v backend=%v: 8-bit saturation %v vs scalar score %d", n, kern, be, r8.Saturated, want.Score)
				}
				res, _, err := AlignPairAdaptive(vek.Bare, q, q, b62, opt)
				if err != nil {
					t.Fatal(err)
				}
				if res.Score != want.Score || res.Saturated {
					t.Fatalf("n=%d kernel=%v backend=%v: adaptive %+v, want exact %d", n, kern, be, res, want.Score)
				}
			}
		}
	}
}

// TestStripedBatchMatchesDiagonal runs whole batches (both strides,
// both element widths, both backends) with a striped kernel selected
// and requires lane-for-lane identical BatchResults against the
// diagonal batch engines, plus the same via the multi-query entry.
func TestStripedBatchMatchesDiagonal(t *testing.T) {
	mat := submat.Blosum62()
	tables := submat.NewCodeTables(mat)
	g := seqio.NewGenerator(74)
	db := g.Database(seqio.MaxBatchLanes + 9)
	queries := [][]uint8{
		g.Protein("q0", 150).Encode(mat.Alphabet()),
		g.Protein("q1", 41).Encode(mat.Alphabet()),
	}
	gaps := aln.DefaultGaps()
	for _, lanes := range []int{seqio.BatchLanes, seqio.MaxBatchLanes} {
		batches := seqio.BuildBatches(db, mat.Alphabet(), seqio.BatchOptions{Lanes: lanes})
		for _, b := range batches {
			for _, q := range queries {
				want8, err := AlignBatch8(vek.Bare, q, tables, b, BatchOptions{Gaps: gaps})
				if err != nil {
					t.Fatal(err)
				}
				want16, err := AlignBatch16(vek.Bare, q, tables, b, BatchOptions{Gaps: gaps})
				if err != nil {
					t.Fatal(err)
				}
				for _, kern := range stripedKernels {
					for _, be := range stripedBackends {
						opt := BatchOptions{Gaps: gaps, Kernel: kern, Backend: be, Scratch: NewScratch()}
						got8, err := AlignBatch8(vek.Bare, q, tables, b, opt)
						if err != nil {
							t.Fatal(err)
						}
						if got8 != want8 {
							t.Fatalf("lanes=%d kernel=%v backend=%v: batch8 diverged from diagonal", lanes, kern, be)
						}
						got16, err := AlignBatch16(vek.Bare, q, tables, b, opt)
						if err != nil {
							t.Fatal(err)
						}
						if got16 != want16 {
							t.Fatalf("lanes=%d kernel=%v backend=%v: batch16 diverged from diagonal", lanes, kern, be)
						}
					}
				}
			}
			wantMulti, err := AlignBatch8Multi(vek.Bare, queries, tables, b, BatchOptions{Gaps: gaps})
			if err != nil {
				t.Fatal(err)
			}
			for _, kern := range stripedKernels {
				gotMulti, err := AlignBatch8Multi(vek.Bare, queries, tables, b, BatchOptions{Gaps: gaps, Kernel: kern, Scratch: NewScratch()})
				if err != nil {
					t.Fatal(err)
				}
				for qi := range wantMulti {
					if gotMulti[qi] != wantMulti[qi] {
						t.Fatalf("lanes=%d kernel=%v: batch8 multi query %d diverged", lanes, kern, qi)
					}
				}
			}
		}
	}
}

// TestStripedScratchReuse runs the striped family twice on one scratch
// — across kernels, backends, and differing shapes — and requires the
// second pass to reproduce fresh-buffer results, proving the cached
// profile and column rows are reinitialized correctly.
func TestStripedScratchReuse(t *testing.T) {
	g := seqio.NewGenerator(75)
	pairs := [][2][]uint8{
		{g.Protein("a", 120).Encode(protAlpha), g.Protein("b", 200).Encode(protAlpha)},
		{g.Protein("c", 33).Encode(protAlpha), g.Protein("d", 61).Encode(protAlpha)},
		{g.Protein("e", 300).Encode(protAlpha), g.Protein("f", 90).Encode(protAlpha)},
	}
	shared := NewScratch()
	for _, kern := range stripedKernels {
		for _, be := range stripedBackends {
			for i, p := range pairs {
				opt := PairOptions{Gaps: aln.DefaultGaps(), Kernel: kern, Backend: be}
				fresh, err := AlignPair8(vek.Bare, p[0], p[1], b62, opt)
				if err != nil {
					t.Fatal(err)
				}
				opt.Scratch = shared
				// Twice: the second call exercises the warm-cache path.
				for pass := 0; pass < 2; pass++ {
					got, err := AlignPair8(vek.Bare, p[0], p[1], b62, opt)
					if err != nil {
						t.Fatal(err)
					}
					if got != fresh {
						t.Fatalf("kernel=%v backend=%v pair %d pass %d: scratch changed result", kern, be, i, pass)
					}
				}
			}
		}
	}
}

// TestProfileCacheKeyIncludesGaps is the regression test for the
// query-profile cache key: aligning the same query with different gap
// penalties must rebuild the profile, not serve the cached one. Checked
// through the observable hit counter for both the diagonal 8-bit
// profile and the striped profile (both element widths).
func TestProfileCacheKeyIncludesGaps(t *testing.T) {
	g := seqio.NewGenerator(76)
	q := g.Protein("q", 120).Encode(protAlpha)
	d := g.Protein("d", 200).Encode(protAlpha)
	gapsA := aln.Gaps{Open: 11, Extend: 1}
	gapsB := aln.Gaps{Open: 7, Extend: 2}

	cases := []struct {
		name  string
		align func(s *Scratch, gaps aln.Gaps)
	}{
		{"diagonal-modeled", func(s *Scratch, gaps aln.Gaps) {
			if _, err := AlignPair8(vek.Bare, q, d, b62, PairOptions{Gaps: gaps, Scratch: s, Backend: BackendModeled}); err != nil {
				t.Fatal(err)
			}
		}},
		{"striped-modeled", func(s *Scratch, gaps aln.Gaps) {
			if _, err := AlignPair8(vek.Bare, q, d, b62, PairOptions{Gaps: gaps, Scratch: s, Backend: BackendModeled, Kernel: KernelStriped}); err != nil {
				t.Fatal(err)
			}
		}},
		{"striped-native", func(s *Scratch, gaps aln.Gaps) {
			if _, err := AlignPair8(vek.Bare, q, d, b62, PairOptions{Gaps: gaps, Scratch: s, Backend: BackendNative, Kernel: KernelLazyF}); err != nil {
				t.Fatal(err)
			}
		}},
		{"striped-16", func(s *Scratch, gaps aln.Gaps) {
			if _, _, err := AlignPair16(vek.Bare, q, d, b62, PairOptions{Gaps: gaps, Scratch: s, Backend: BackendModeled, Kernel: KernelStriped}); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewScratch()
			tc.align(s, gapsA)
			tc.align(s, gapsA)
			if hits := s.TakeProfileCacheHits(); hits != 1 {
				t.Fatalf("repeat with same gaps: %d hits, want 1", hits)
			}
			// Same query and matrix, different gaps: the profile must be
			// rebuilt — a hit here is the stale-profile bug.
			tc.align(s, gapsB)
			if hits := s.TakeProfileCacheHits(); hits != 0 {
				t.Fatalf("changed gaps still hit the profile cache (%d hits)", hits)
			}
			tc.align(s, gapsB)
			if hits := s.TakeProfileCacheHits(); hits != 1 {
				t.Fatalf("repeat after gap change: %d hits, want 1", hits)
			}
		})
	}
}

// FuzzKernelsVsDiagonal is the cross-kernel differential fuzzer: for
// arbitrary sequences and affine gap models, the striped family (both
// correction variants, both backends, both element widths) must
// reproduce the diagonal kernel's results bit for bit, including the
// batch entry.
func FuzzKernelsVsDiagonal(f *testing.F) {
	f.Add([]byte("MKVLAWMKVLAWMKVLAW"), []byte("MKVLAWMKVLNW"), byte(11), byte(1))
	f.Add([]byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"),
		[]byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"), byte(1), byte(1))
	f.Add([]byte("WWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWW"),
		[]byte("WWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWW"), byte(0), byte(0))
	f.Add([]byte("ACDEFGHIKLMNPQRSTVWY"), []byte("YWVTSRQPNMLKIHGFEDCA"), byte(19), byte(4))
	f.Add([]byte("M"), []byte("M"), byte(5), byte(2))

	bl62 := submat.Blosum62()
	tables := submat.NewCodeTables(bl62)

	f.Fuzz(func(t *testing.T, qraw, draw []byte, openB, extB byte) {
		size := bl62.Alphabet().Size()
		q := fuzzCodes(qraw, size, 300)
		d := fuzzCodes(draw, size, 300)
		if len(q) == 0 || len(d) == 0 {
			t.Skip()
		}
		ext := 1 + int32(extB)%15
		open := ext + int32(openB)%20
		gaps := aln.Gaps{Open: open, Extend: ext}
		opt := PairOptions{Gaps: gaps}

		want8, err := AlignPair8(vek.Bare, q, d, bl62, opt)
		if err != nil {
			t.Fatal(err)
		}
		want8w, err := AlignPair8W(vek.Bare, q, d, bl62, opt)
		if err != nil {
			t.Fatal(err)
		}
		want16, _, err := AlignPair16(vek.Bare, q, d, bl62, opt)
		if err != nil {
			t.Fatal(err)
		}
		want16w, err := AlignPair16W(vek.Bare, q, d, bl62, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, kern := range stripedKernels {
			for _, be := range stripedBackends {
				kopt := PairOptions{Gaps: gaps, Kernel: kern, Backend: be}
				tag := fmt.Sprintf("kernel=%v backend=%v gaps=%+v qlen=%d dlen=%d", kern, be, gaps, len(q), len(d))
				got8, err := AlignPair8(vek.Bare, q, d, bl62, kopt)
				if err != nil {
					t.Fatal(err)
				}
				if got8 != want8 {
					t.Fatalf("%s: pair8 %+v != diagonal %+v", tag, got8, want8)
				}
				got8w, err := AlignPair8W(vek.Bare, q, d, bl62, kopt)
				if err != nil {
					t.Fatal(err)
				}
				if got8w != want8w {
					t.Fatalf("%s: pair8w %+v != diagonal %+v", tag, got8w, want8w)
				}
				got16, _, err := AlignPair16(vek.Bare, q, d, bl62, kopt)
				if err != nil {
					t.Fatal(err)
				}
				if got16 != want16 {
					t.Fatalf("%s: pair16 %+v != diagonal %+v", tag, got16, want16)
				}
				got16w, err := AlignPair16W(vek.Bare, q, d, bl62, kopt)
				if err != nil {
					t.Fatal(err)
				}
				if got16w != want16w {
					t.Fatalf("%s: pair16w %+v != diagonal %+v", tag, got16w, want16w)
				}
			}
		}

		// Batch entry on a single-lane batch, both strides.
		alpha := bl62.Alphabet()
		letters := make([]byte, len(d))
		for i, c := range d {
			letters[i] = alpha.Letter(c)
		}
		db := []seqio.Sequence{{ID: "fuzz", Residues: letters}}
		for _, lanes := range []int{seqio.BatchLanes, seqio.MaxBatchLanes} {
			b := seqio.MakeBatch(db, []int{0}, alpha, lanes)
			wantB, err := AlignBatch8(vek.Bare, q, tables, b, BatchOptions{Gaps: gaps})
			if err != nil {
				t.Fatal(err)
			}
			for _, kern := range stripedKernels {
				gotB, err := AlignBatch8(vek.Bare, q, tables, b, BatchOptions{Gaps: gaps, Kernel: kern})
				if err != nil {
					t.Fatal(err)
				}
				if gotB != wantB {
					t.Fatalf("kernel=%v lanes=%d: batch8 diverged from diagonal", kern, lanes)
				}
			}
		}
	})
}
