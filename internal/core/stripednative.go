package core

import (
	"swvec/internal/aln"
	"swvec/internal/native"
	"swvec/internal/seqio"
	"swvec/internal/submat"
)

// Native glue for the striped kernel family: resolve the compiled
// shape from (element width, lane count), serve the striped profile
// from the same cache the modeled kernel uses (so backend switches
// stay warm), and hand the scratch-owned column rows to the kernel,
// which initializes them itself.

// nativeStripedPair8 runs the compiled 8-bit striped kernel at the
// given lane count.
//
//sw:hotpath
func nativeStripedPair8(q, dseq []uint8, mat *submat.Matrix, opt *PairOptions, lanes int) aln.ScoreResult {
	st := stripedState8(opt.Scratch)
	prof, segLen := stripedProfileFor(st, opt.Scratch, mat, q, opt.Gaps, lanes)
	rows := segLen * lanes
	h := growE(&st.hStore, rows)
	hl := growE(&st.hLoad, rows)
	e := growE(&st.eRow, rows)
	decon := opt.Kernel == KernelLazyF
	var score int32
	var sat bool
	if lanes == seqio.MaxBatchLanes {
		score, sat = native.StripedScore8x64(prof, segLen, dseq, opt.Gaps.Open, opt.Gaps.Extend, decon, h, hl, e)
	} else {
		score, sat = native.StripedScore8x32(prof, segLen, dseq, opt.Gaps.Open, opt.Gaps.Extend, decon, h, hl, e)
	}
	return aln.ScoreResult{Score: score, EndQ: -1, EndD: -1, Saturated: sat}
}

// nativeStripedPair16 runs the compiled 16-bit striped kernel at the
// given lane count.
//
//sw:hotpath
func nativeStripedPair16(q, dseq []uint8, mat *submat.Matrix, opt *PairOptions, lanes int) aln.ScoreResult {
	st := stripedState16(opt.Scratch)
	prof, segLen := stripedProfileFor(st, opt.Scratch, mat, q, opt.Gaps, lanes)
	rows := segLen * lanes
	h := growE(&st.hStore, rows)
	hl := growE(&st.hLoad, rows)
	e := growE(&st.eRow, rows)
	decon := opt.Kernel == KernelLazyF
	var score int32
	var sat bool
	if lanes == lanes16w {
		score, sat = native.StripedScore16x32(prof, segLen, dseq, opt.Gaps.Open, opt.Gaps.Extend, decon, h, hl, e)
	} else {
		score, sat = native.StripedScore16x16(prof, segLen, dseq, opt.Gaps.Open, opt.Gaps.Extend, decon, h, hl, e)
	}
	return aln.ScoreResult{Score: score, EndQ: -1, EndD: -1, Saturated: sat}
}
