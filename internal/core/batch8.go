package core

import (
	"fmt"

	"swvec/internal/aln"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// lanes8 is the lane count of the 256-bit 8-bit batch engine.
const lanes8 = seqio.BatchLanes

// negInf8 is the E boundary value for the 8-bit engine. E and F never
// fall below -Open in a valid run, so the int8 floor is a safe -inf.
const negInf8 = int8(-128)

// BatchOptions configures the 8-bit interleaved batch engine.
type BatchOptions struct {
	// Gaps is the gap model; Open == Extend selects the reduced
	// linear-gap path.
	Gaps aln.Gaps
	// BlockCols processes the batch in column blocks of this many
	// residues so the score scratch stays cache-resident — the block
	// size the paper hand-tunes and wants an autotuner for (§IV-I).
	// Zero processes whole rows.
	BlockCols int
	// EagerMax is the §III-D ablation: reduce the running maximum
	// horizontally after every column instead of keeping deferred
	// per-lane maxima. On this ALU-bound engine the reduction cost is
	// not hidden, which is exactly the paper's argument for deferring.
	EagerMax bool
	// Scratch supplies reusable working buffers owned by the calling
	// worker; nil allocates per call. See Scratch.
	Scratch *Scratch
}

// BatchResult carries per-lane outcomes of one batch alignment.
type BatchResult struct {
	// Scores holds each lane's best local alignment score. Lanes
	// beyond Batch.Count are zero.
	Scores [lanes8]int32
	// Saturated marks lanes whose 8-bit score hit the ceiling; the
	// score is then a lower bound and the caller reruns the lane with
	// the 16-bit pair kernel (the variable 8/16-bit width scheme).
	Saturated [lanes8]bool
}

// batchScratch caches the per-code score rows of the current block:
// "for every batch we compute the score once and store it in a scratch
// buffer" (§III-C). rows[c] is non-nil once code c has been scored for
// the block identified by built[c]. Codes that occur only once in the
// query skip the scratch: building a row costs more than one inline
// shuffle lookup per column, so single-use codes are scored inline
// (one of the cache-dependent tuning choices §III-C alludes to).
type batchScratch struct {
	rows  [submat.W][]int8
	built [submat.W]int
	// count[c] is the number of query rows using code c.
	count [submat.W]int
	cols  int
}

// prepare resets the scratch for a new (batch, query set) pair with
// the given block width, keeping the allocated score rows for reuse.
func (s *batchScratch) prepare(cols int, queries ...[]uint8) {
	s.cols = cols
	for c := range s.built {
		s.built[c] = -1
		s.count[c] = 0
	}
	for _, q := range queries {
		for _, c := range q {
			s.count[c]++
		}
	}
}

// row returns the score row of code c for the block starting at column
// j0 (block id), computing it with shuffle lookups if needed, or nil
// when the kernel should score the row inline. t8 is the batch's
// transposed residue matrix as int8 lanes.
func (s *batchScratch) row(mch vek.Machine, tables *submat.CodeTables, t8 []int8, c uint8, blockID, j0, cols int) []int8 {
	if s.count[c] < 2 {
		return nil
	}
	if s.built[c] == blockID {
		return s.rows[c]
	}
	if cap(s.rows[c]) < s.cols*lanes8 {
		s.rows[c] = make([]int8, s.cols*lanes8)
	}
	s.rows[c] = s.rows[c][:s.cols*lanes8]
	row := s.rows[c]
	for j := 0; j < cols; j++ {
		idx := mch.Load8(t8[(j0+j)*lanes8:])
		scores := tables.LookupScores(mch, c, idx)
		mch.Store8(row[j*lanes8:], scores)
	}
	s.built[c] = blockID
	return row
}

// codesAsInt8 reinterprets residue codes (0..31) as int8 lanes.
func codesAsInt8(codes []uint8) []int8 {
	out := make([]int8, len(codes))
	for i, c := range codes {
		out[i] = int8(c)
	}
	return out
}

// AlignBatch8 aligns the encoded query against all 32 sequences of the
// transposed batch simultaneously: lane l computes the DP matrix of
// sequence l (the interleaving of Fig. 1(b)), while substitution
// scores come from the shared shuffle-scored scratch buffer. This is
// the paper's high-throughput 8-bit path: roughly half a vector
// instruction per DP cell, no gathers, and per-lane deferred maxima.
func AlignBatch8(mch vek.Machine, query []uint8, tables *submat.CodeTables, batch *seqio.Batch, opt BatchOptions) (BatchResult, error) {
	var res BatchResult
	if err := opt.Gaps.Validate(); err != nil {
		return res, err
	}
	if len(query) == 0 {
		return res, fmt.Errorf("core: empty query")
	}
	if batch.MaxLen == 0 || batch.Count == 0 {
		return res, fmt.Errorf("core: empty batch")
	}
	if opt.Gaps.Open > 127 {
		return res, fmt.Errorf("core: gap open %d exceeds the 8-bit range", opt.Gaps.Open)
	}
	s := opt.Scratch
	if s == nil {
		s = &Scratch{}
	}
	t8 := s.codes(batch.T)
	n := batch.MaxLen
	block := opt.BlockCols
	if block <= 0 || block > n {
		block = n
	}
	s.score.prepare(block, query)
	linear := opt.Gaps.IsLinear()
	s.state.ensure(mch, n, !linear)
	if linear {
		runBatch8Linear(mch, query, tables, batch, t8, &opt, s, &res)
	} else {
		runBatch8Affine(mch, query, tables, batch, t8, &opt, s, &res)
	}
	return res, nil
}

// batchState holds the reusable column-state buffers of the batch
// engine; the multi-query path recycles one state across queries.
type batchState struct {
	// hRow[j]/fRow[j] hold H(i-1, j) and F(i-1, j) per lane,
	// flattened with stride 32.
	hRow, fRow []int8
}

// ensure sizes the state for a batch of MaxLen n and initializes it
// for a fresh query (H zeroed, F at -inf for the affine model),
// reusing the buffers whenever their capacity suffices.
func (st *batchState) ensure(mch vek.Machine, n int, affine bool) {
	need := n * lanes8
	if cap(st.hRow) < need {
		st.hRow = make([]int8, need)
		st.fRow = make([]int8, need)
	} else {
		st.hRow = st.hRow[:need]
		st.fRow = st.fRow[:need]
		for i := range st.hRow {
			st.hRow[i] = 0
		}
	}
	if affine {
		for i := range st.fRow {
			st.fRow[i] = negInf8
		}
	}
	mch.T.Add(vek.OpScalarStore, vek.W256, uint64(n))
}

// reset prepares the state for a fresh query.
func (st *batchState) reset(mch vek.Machine, affine bool) {
	for i := range st.hRow {
		st.hRow[i] = 0
	}
	if affine {
		for i := range st.fRow {
			st.fRow[i] = negInf8
		}
	}
	mch.T.Add(vek.OpScalarStore, vek.W256, uint64(len(st.hRow)/lanes8))
}

func runBatch8Affine(mch vek.Machine, query []uint8, tables *submat.CodeTables, batch *seqio.Batch, t8 []int8, opt *BatchOptions, s *Scratch, res *BatchResult) {
	m, n := len(query), batch.MaxLen
	scratch := &s.score
	block := scratch.cols
	openV := mch.Splat8(int8(clampI32(opt.Gaps.Open, 127)))
	extV := mch.Splat8(int8(clampI32(opt.Gaps.Extend, 127)))
	zeroV := mch.Zero8()
	negV := mch.Splat8(negInf8)

	hRow, fRow := s.state.hRow, s.state.fRow
	// Per-row carries across block boundaries.
	eCarry, hLeftCarry, hDiagCarry := s.carryBufs(m)
	for i := range eCarry {
		eCarry[i] = negV
	}
	mch.T.Add(vek.OpScalarStore, vek.W256, uint64(m))

	vMax := zeroV
	var eagerBest int8

	blockID := 0
	for j0 := 0; j0 < n; j0 += block {
		cols := block
		if j0+cols > n {
			cols = n - j0
		}
		for i := 0; i < m; i++ {
			sRow := scratch.row(mch, tables, t8, query[i], blockID, j0, cols)
			e := eCarry[i]
			hLeft := hLeftCarry[i]
			hDiag := hDiagCarry[i]
			for j := 0; j < cols; j++ {
				off := (j0 + j) * lanes8
				var score vek.I8x32
				if sRow != nil {
					score = mch.Load8(sRow[j*lanes8:])
				} else {
					idx := mch.Load8(t8[off:])
					score = tables.LookupScores(mch, query[i], idx)
				}
				hUp := mch.Load8(hRow[off:])
				fIn := mch.Load8(fRow[off:])
				f := mch.Max8(mch.SubSat8(fIn, extV), mch.SubSat8(hUp, openV))
				e = mch.Max8(mch.SubSat8(e, extV), mch.SubSat8(hLeft, openV))
				h := mch.AddSat8(hDiag, score)
				h = mch.Max8(h, zeroV)
				h = mch.Max8(h, e)
				h = mch.Max8(h, f)
				mch.Store8(hRow[off:], h)
				mch.Store8(fRow[off:], f)
				if opt.EagerMax {
					if v := mch.ReduceMax8(h); v > eagerBest {
						eagerBest = v
					}
					mch.T.Add(vek.OpScalar, vek.W256, 1)
				} else {
					vMax = mch.Max8(vMax, h)
				}
				hDiag = hUp
				hLeft = h
			}
			eCarry[i] = e
			hLeftCarry[i] = hLeft
			hDiagCarry[i] = hDiag
		}
		blockID++
	}
	if opt.EagerMax {
		// Fold the eager scalar best back into lane 0 so finishBatch
		// reports it; eager mode is an ablation used for aggregate
		// cost measurement, not per-lane scoring.
		vMax[0] = eagerBest
	}
	finishBatch(mch, batch, vMax, res)
}

func runBatch8Linear(mch vek.Machine, query []uint8, tables *submat.CodeTables, batch *seqio.Batch, t8 []int8, opt *BatchOptions, s *Scratch, res *BatchResult) {
	m, n := len(query), batch.MaxLen
	scratch := &s.score
	block := scratch.cols
	extV := mch.Splat8(int8(clampI32(opt.Gaps.Extend, 127)))
	zeroV := mch.Zero8()

	hRow := s.state.hRow
	_, hLeftCarry, hDiagCarry := s.carryBufs(m)
	mch.T.Add(vek.OpScalarStore, vek.W256, uint64(m))

	vMax := zeroV

	blockID := 0
	for j0 := 0; j0 < n; j0 += block {
		cols := block
		if j0+cols > n {
			cols = n - j0
		}
		for i := 0; i < m; i++ {
			sRow := scratch.row(mch, tables, t8, query[i], blockID, j0, cols)
			hLeft := hLeftCarry[i]
			hDiag := hDiagCarry[i]
			for j := 0; j < cols; j++ {
				off := (j0 + j) * lanes8
				var score vek.I8x32
				if sRow != nil {
					score = mch.Load8(sRow[j*lanes8:])
				} else {
					idx := mch.Load8(t8[off:])
					score = tables.LookupScores(mch, query[i], idx)
				}
				hUp := mch.Load8(hRow[off:])
				h := mch.AddSat8(hDiag, score)
				h = mch.Max8(h, zeroV)
				h = mch.Max8(h, mch.SubSat8(hLeft, extV))
				h = mch.Max8(h, mch.SubSat8(hUp, extV))
				mch.Store8(hRow[off:], h)
				vMax = mch.Max8(vMax, h)
				hDiag = hUp
				hLeft = h
			}
			hLeftCarry[i] = hLeft
			hDiagCarry[i] = hDiag
		}
		blockID++
	}
	finishBatch(mch, batch, vMax, res)
}

// AlignBatch8Multi aligns several queries against the same batch,
// amortizing the per-batch work across them: the transposed residue
// matrix is converted once, the column-state buffers are recycled, and
// — the scenario-2 lever of §IV-G — the per-code score scratch is
// shared, since it depends only on the batch and the residue code, not
// on the query. With the whole-row traversal (BlockCols == 0) a code's
// scores are computed once for the entire query set.
func AlignBatch8Multi(mch vek.Machine, queries [][]uint8, tables *submat.CodeTables, batch *seqio.Batch, opt BatchOptions) ([]BatchResult, error) {
	if err := opt.Gaps.Validate(); err != nil {
		return nil, err
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("core: no queries")
	}
	for i, q := range queries {
		if len(q) == 0 {
			return nil, fmt.Errorf("core: query %d is empty", i)
		}
	}
	if batch.MaxLen == 0 || batch.Count == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	if opt.Gaps.Open > 127 {
		return nil, fmt.Errorf("core: gap open %d exceeds the 8-bit range", opt.Gaps.Open)
	}
	s := opt.Scratch
	if s == nil {
		s = &Scratch{}
	}
	t8 := s.codes(batch.T)
	out := make([]BatchResult, len(queries))
	n := batch.MaxLen
	affine := !opt.Gaps.IsLinear()
	run := func(q []uint8, res *BatchResult) {
		if affine {
			runBatch8Affine(mch, q, tables, batch, t8, &opt, s, res)
		} else {
			runBatch8Linear(mch, q, tables, batch, t8, &opt, s, res)
		}
	}
	if opt.BlockCols > 0 && opt.BlockCols < n {
		// Blocked traversal invalidates the score scratch per block, so
		// only the t8 conversion and the state buffers are shared.
		s.state.ensure(mch, n, affine)
		for qi, q := range queries {
			s.score.prepare(opt.BlockCols, q)
			if qi > 0 {
				s.state.reset(mch, affine)
			}
			run(q, &out[qi])
		}
		return out, nil
	}
	s.score.prepare(n, queries...)
	s.state.ensure(mch, n, affine)
	for qi, q := range queries {
		if qi > 0 {
			s.state.reset(mch, affine)
		}
		run(q, &out[qi])
	}
	return out, nil
}

// finishBatch extracts per-lane maxima and saturation flags.
func finishBatch(mch vek.Machine, batch *seqio.Batch, vMax vek.I8x32, res *BatchResult) {
	// One horizontal pass over the lane maxima — the deferred
	// reduction of §III-D, amortized over the entire batch.
	mch.T.Add(vek.OpReduce, vek.W256, 1)
	mch.T.Add(vek.OpScalar, vek.W256, lanes8)
	for lane := 0; lane < batch.Count; lane++ {
		v := int32(vMax[lane])
		res.Scores[lane] = v
		if v >= int32(sat8) {
			res.Saturated[lane] = true
		}
	}
}
