package core

import (
	"fmt"

	"swvec/internal/aln"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// lanes8 is the lane count of the 256-bit 8-bit batch engine.
const lanes8 = seqio.BatchLanes

// negInf8 is the E boundary value for the 8-bit engine. E and F never
// fall below -Open in a valid run, so the int8 floor is a safe -inf.
const negInf8 = int8(-128)

// BatchOptions configures the interleaved batch engines.
type BatchOptions struct {
	// Gaps is the gap model; Open == Extend selects the reduced
	// linear-gap path.
	Gaps aln.Gaps
	// BlockCols processes the batch in column blocks of this many
	// residues so the score scratch stays cache-resident — the block
	// size the paper hand-tunes and wants an autotuner for (§IV-I).
	// Zero processes whole rows.
	BlockCols int
	// EagerMax is the §III-D ablation: reduce the running maximum
	// horizontally after every column instead of keeping deferred
	// per-lane maxima. On this ALU-bound engine the reduction cost is
	// not hidden, which is exactly the paper's argument for deferring.
	EagerMax bool
	// Scratch supplies reusable working buffers owned by the calling
	// worker; nil allocates per call. See Scratch.
	Scratch *Scratch
	// Backend selects the execution backend, as in
	// PairOptions.Backend. EagerMax forces the modeled backend.
	Backend Backend
	// Kernel selects the kernel family, as in PairOptions.Kernel. The
	// striped family aligns each lane's sequence with the striped pair
	// kernel instead of the interleaved anti-diagonal batch engine;
	// EagerMax (a diagonal-engine ablation) forces the diagonal family.
	Kernel Kernel
}

// BatchResult carries per-lane outcomes of one batch alignment. Only
// the first Batch.Stride() lanes are meaningful.
type BatchResult struct {
	// Scores holds each lane's best local alignment score. Lanes
	// beyond Batch.Count are zero.
	Scores [seqio.MaxBatchLanes]int32
	// Saturated marks lanes whose score hit the engine's ceiling; the
	// score is then a lower bound and the caller reruns the lane at
	// the next wider bit width (the variable 8/16-bit width scheme).
	Saturated [seqio.MaxBatchLanes]bool
}

// AlignBatch8 aligns the encoded query against all sequences of the
// transposed batch simultaneously: lane l computes the DP matrix of
// sequence l (the interleaving of Fig. 1(b)), while substitution
// scores come from the shared shuffle-scored scratch buffer. This is
// the paper's high-throughput 8-bit path: roughly half a vector
// instruction per DP cell, no gathers, and per-lane deferred maxima.
// A 32-lane batch runs on the 256-bit engine, a 64-lane batch on the
// 512-bit one.
func AlignBatch8(mch vek.Machine, query []uint8, tables *submat.CodeTables, batch *seqio.Batch, opt BatchOptions) (BatchResult, error) {
	var res BatchResult
	if err := checkBatch([][]uint8{query}, batch, &opt); err != nil {
		return res, err
	}
	if opt.Gaps.Open > 127 {
		return res, fmt.Errorf("core: gap open %d exceeds the 8-bit range", opt.Gaps.Open)
	}
	if stripedBatchOK(tables, &opt) {
		err := stripedBatch8(mch, query, tables, batch, &opt, &res)
		return res, err
	}
	if useNativeBatch(tables, &opt) {
		s := batchScratchOrLocal(&opt)
		nativeBatch8(query, tables, batch, &opt, s, &res)
		return res, nil
	}
	if batch.Stride() == seqio.MaxBatchLanes {
		return alignBatch[vek.I8x64, int8](be8x64{}, mch, query, tables, batch, opt)
	}
	return alignBatch[vek.I8x32, int8](be8x32{}, mch, query, tables, batch, opt)
}

// AlignBatch8Multi aligns several queries against the same batch,
// amortizing the per-batch work across them: the transposed residue
// matrix is converted once, the column-state buffers are recycled, and
// — the scenario-2 lever of §IV-G — the per-code score scratch is
// shared, since it depends only on the batch and the residue code, not
// on the query. With the whole-row traversal (BlockCols == 0) a code's
// scores are computed once for the entire query set.
func AlignBatch8Multi(mch vek.Machine, queries [][]uint8, tables *submat.CodeTables, batch *seqio.Batch, opt BatchOptions) ([]BatchResult, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("core: no queries")
	}
	if err := checkBatch(queries, batch, &opt); err != nil {
		return nil, err
	}
	if opt.Gaps.Open > 127 {
		return nil, fmt.Errorf("core: gap open %d exceeds the 8-bit range", opt.Gaps.Open)
	}
	if stripedBatchOK(tables, &opt) {
		// The striped profile cache is keyed by query, so the multi-query
		// amortization here is the profile, not the score scratch.
		out := make([]BatchResult, len(queries))
		for qi := range queries {
			if err := stripedBatch8(mch, queries[qi], tables, batch, &opt, &out[qi]); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	if useNativeBatch(tables, &opt) {
		s := batchScratchOrLocal(&opt)
		out := make([]BatchResult, len(queries))
		for qi := range queries {
			nativeBatch8(queries[qi], tables, batch, &opt, s, &out[qi])
		}
		return out, nil
	}
	if batch.Stride() == seqio.MaxBatchLanes {
		return alignBatchMulti[vek.I8x64, int8](be8x64{}, mch, queries, tables, batch, opt)
	}
	return alignBatchMulti[vek.I8x32, int8](be8x32{}, mch, queries, tables, batch, opt)
}

// alignBatchMulti runs the shared-batch multi-query traversal on one
// engine instantiation.
func alignBatchMulti[V any, E vek.Elem, En batchEngine[V, E]](eng En, mch vek.Machine, queries [][]uint8, tables *submat.CodeTables, batch *seqio.Batch, opt BatchOptions) ([]BatchResult, error) {
	s := opt.Scratch
	if s == nil {
		s = &Scratch{}
	}
	t8 := s.codes(batch.T)
	out := make([]BatchResult, len(queries))
	n := batch.MaxLen
	if opt.BlockCols > 0 && opt.BlockCols < n {
		// Blocked traversal invalidates the score scratch per block, so
		// only the t8 conversion and the state buffers are shared.
		for qi, q := range queries {
			s.score.prepare(opt.BlockCols, q)
			runBatch(eng, mch, q, tables, batch, t8, &opt, s, &out[qi])
		}
		return out, nil
	}
	s.score.prepare(n, queries...)
	for qi, q := range queries {
		runBatch(eng, mch, q, tables, batch, t8, &opt, s, &out[qi])
	}
	return out, nil
}
