package core

import (
	"swvec/internal/aln"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// alignPair16Linear is the reduced kernel for the linear gap model
// (Fig. 7's "without affine gap penalty" configuration): no E/F gap
// state is kept, every gap step pays the flat extension cost, saving
// two buffer loads, two stores and four arithmetic ops per vector.
func alignPair16Linear(mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, opt PairOptions) (aln.ScoreResult, *TraceMatrix, error) {
	res := aln.ScoreResult{EndQ: -1, EndD: -1}
	m, n := len(q), len(dseq)
	st := newPairState16(mch, q, dseq, mat)
	var tb *TraceMatrix
	if opt.Traceback {
		tb = newTraceMatrix(m, n)
	}
	trk := newTracker(mch, opt.Traceback || opt.TrackPosition)
	ext16 := int16(clampI32(opt.Gaps.Extend, 32767))
	extV := mch.Splat16(ext16)
	zeroV := mch.Zero16()
	oneV := mch.Splat16(tbDiag)
	twoV := mch.Splat16(tbLeft)
	threeV := mch.Splat16(tbUp)
	thr := opt.scalarThreshold(lanes16)

	for d := 2; d <= m+n; d++ {
		lo, hi := diagBounds(d, m, n)
		var tbDiagSlice []int8
		if tb != nil {
			tbDiagSlice = tb.diagSlice(d)
		}
		if hi-lo+1 < thr {
			for i := lo; i <= hi; i++ {
				st.scalarCellLinear(mch, q, dseq, mat, &opt, trk, tbDiagSlice, d, i, lo)
			}
			st.rotate(mch, d)
			continue
		}
		r := lo
		for ; r+lanes16 <= hi+1; r += lanes16 {
			t0 := n - d + r
			iq0 := mch.Load32(st.qMul[r-1:])
			iq1 := mch.Load32(st.qMul[r+7:])
			id0 := mch.Load32(st.dRev[t0:])
			id1 := mch.Load32(st.dRev[t0+8:])
			g0 := mch.Gather32(st.flat, mch.Add32(iq0, id0))
			g1 := mch.Gather32(st.flat, mch.Add32(iq1, id1))
			score := mch.Narrow32To16(g0, g1)

			up := mch.Load16(st.hPrev[r-1:])
			left := mch.Load16(st.hPrev[r:])
			diagv := mch.Load16(st.hPrev2[r-1:])

			e := mch.SubSat16(left, extV)
			f := mch.SubSat16(up, extV)
			h0 := mch.AddSat16(diagv, score)
			h := mch.Max16(h0, zeroV)
			h = mch.Max16(h, e)
			h = mch.Max16(h, f)
			mch.Store16(st.hCur[r:], h)
			if opt.RowMajorLayout {
				mch.T.Add(vek.OpScalarLoad, vek.W256, 3*lanes16)
				mch.T.Add(vek.OpScalarStore, vek.W256, lanes16)
			}

			if opt.EagerMax {
				eagerReduce(mch, trk, h)
			} else {
				trk.updateVector(mch, h, r, d)
			}

			if tb != nil {
				dir := dirEncode(mch, h, h0, e, zeroV, oneV, twoV, threeV)
				packed := mch.Narrow16To8(dir, zeroV)
				mch.Store8Partial(tbDiagSlice[r-lo:r-lo+lanes16], packed)
			}
		}
		if tail := hi - r + 1; tail > 0 {
			if opt.ScalarTail {
				for i := r; i <= hi; i++ {
					st.scalarCellLinear(mch, q, dseq, mat, &opt, trk, tbDiagSlice, d, i, lo)
				}
			} else {
				st.paddedTailLinear(mch, &opt, trk, tbDiagSlice, d, r, hi, lo, extV)
			}
		}
		st.rotate(mch, d)
	}
	trk.finish(mch, &res, int32(sat16))
	return res, tb, nil
}

// paddedTailLinear processes the final partial vector of a diagonal
// with zero padding (§III-B) under the linear gap model.
func (st *pairState16) paddedTailLinear(mch vek.Machine, opt *PairOptions, trk *tracker, tbSlice []int8, d, r, hi, lo int, extV vek.I16x16) {
	valid := hi - r + 1
	score := st.scoreVecPartial(mch, d, r, valid)
	up := mch.Load16Partial(st.hPrev[r-1 : r-1+valid])
	left := mch.Load16Partial(st.hPrev[r : r+valid])
	diagv := mch.Load16Partial(st.hPrev2[r-1 : r-1+valid])
	zeroV := mch.Zero16()
	e := mch.SubSat16(left, extV)
	f := mch.SubSat16(up, extV)
	h0 := mch.AddSat16(diagv, score)
	h := mch.Max16(h0, zeroV)
	h = mch.Max16(h, e)
	h = mch.Max16(h, f)
	mch.Store16Partial(st.hCur[r:r+valid], h)
	hMasked := h
	for l := valid; l < lanes16; l++ {
		hMasked[l] = 0
	}
	mch.T.Add(vek.OpLogic, vek.W256, 1)
	if opt.EagerMax {
		eagerReduce(mch, trk, hMasked)
	} else {
		trk.updateVector(mch, hMasked, r, d)
	}
	if tbSlice != nil {
		oneV := mch.Splat16(tbDiag)
		twoV := mch.Splat16(tbLeft)
		threeV := mch.Splat16(tbUp)
		dir := dirEncode(mch, h, h0, e, zeroV, oneV, twoV, threeV)
		packed := mch.Narrow16To8(dir, zeroV)
		mch.Store8Partial(tbSlice[r-lo:r-lo+valid], packed)
	}
}

// scalarCellLinear computes one linear-gap cell with scalar
// instructions.
func (st *pairState16) scalarCellLinear(mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, opt *PairOptions, trk *tracker, tbSlice []int8, d, i, lo int) {
	j := d - i
	sc := int32(mat.Score(q[i-1], dseq[j-1]))
	e := satSub16(int32(st.hPrev[i]), opt.Gaps.Extend)
	f := satSub16(int32(st.hPrev[i-1]), opt.Gaps.Extend)
	h0 := satAdd16(int32(st.hPrev2[i-1]), sc)
	h := maxI32(maxI32(h0, 0), maxI32(e, f))
	st.hCur[i] = int16(h)
	trk.updateScalar(h, i, d)
	mch.T.Add(vek.OpScalar, vek.W256, 6)
	mch.T.Add(vek.OpScalarLoad, vek.W256, 4)
	mch.T.Add(vek.OpScalarStore, vek.W256, 1)
	if tbSlice != nil {
		var dir uint8
		switch {
		case h == 0:
			dir = tbStop
		case h == h0:
			dir = tbDiag
		case h == e:
			dir = tbLeft
		default:
			dir = tbUp
		}
		tbSlice[i-lo] = int8(dir)
		mch.T.Add(vek.OpScalarStore, vek.W256, 1)
	}
}
