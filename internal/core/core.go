// Package core implements the paper's enhanced Smith-Waterman
// alignment kernel (§III): anti-diagonal (wavefront) vectorization
// with diagonal-based memory indexing, zero-padded short diagonal
// segments with a scalar fallback, the reorganized 32-wide
// substitution matrix accessed by 32-bit gathers (16-bit lanes) or by
// query-profile shuffles (8-bit lanes), deferred per-lane maxima, an
// interleaved 32-sequence batch engine for database search, optional
// traceback recording in diagonal-linearized storage, and variable
// 8/16-bit width with saturation-triggered escalation.
package core

import (
	"fmt"

	"swvec/internal/aln"
)

// negInf16 is the E/F boundary value for the 16-bit kernels. It leaves
// headroom so that repeated saturating subtraction cannot wrap and the
// scalar fallback can subtract penalties in int32 without overflow.
const negInf16 = int16(-30000)

// sat16 is the saturation ceiling of the 16-bit kernels.
const sat16 = int16(32767)

// sat8 is the saturation ceiling of the 8-bit kernels.
const sat8 = int8(127)

// PairOptions configures the per-pair wavefront kernels.
type PairOptions struct {
	// Gaps is the gap model. Open == Extend selects the reduced
	// linear-gap kernel, which skips the E/F bookkeeping (Fig. 7).
	Gaps aln.Gaps
	// Traceback records per-cell directions in diagonal-linearized
	// storage so Walk can recover the alignment (Fig. 8).
	Traceback bool
	// ScalarThreshold routes diagonal segments shorter than this to
	// the scalar fallback path (§III-B: "for small segments, we revert
	// to standard CPU instructions"). Zero selects the default.
	ScalarThreshold int
	// ScalarTail computes partial tail vectors with the scalar
	// fallback instead of the default zero-padded masked vector
	// (§III-B uses padding; this is the ablation knob for that
	// choice).
	ScalarTail bool
	// RowMajorLayout models storing H/E/F in row-major order instead
	// of the diagonal-linearized layout: every vector store becomes a
	// strided scatter of scalar stores. Used by the Fig. 2 ablation.
	RowMajorLayout bool
	// TrackPosition keeps the end coordinates of the best cell in
	// score-only mode at the cost of one compare+movemask per vector
	// (implied by Traceback).
	TrackPosition bool
	// EagerMax is the §III-D ablation: perform a horizontal reduction
	// after every vector instead of deferring per-lane maxima to the
	// end of the alignment.
	EagerMax bool
	// Scratch supplies reusable working buffers owned by the calling
	// worker (currently used by the 32-bit kernel, the search
	// pipeline's final escalation tier); nil allocates per call.
	Scratch *Scratch
	// Backend selects the execution backend. BackendAuto and
	// BackendModeled run the instrumented vek machine; BackendNative
	// runs the compiled kernels in internal/native, which produce
	// bit-identical results but no instruction tallies. Modeled-only
	// features (Traceback, EagerMax) force the modeled backend.
	Backend Backend
	// Kernel selects the kernel family. KernelAuto and KernelDiagonal
	// run the anti-diagonal wavefront kernel; the striped family
	// (KernelStriped, KernelLazyF) runs Farrar's segmented layout,
	// which is score-only: requests that need positions or traceback
	// (Traceback, TrackPosition) and the modeled-only ablations
	// (EagerMax, RowMajorLayout) stay on the diagonal family.
	Kernel Kernel
}

// DefaultScalarThreshold is the segment length below which the kernels
// use scalar instructions; segments at least this long are vectorized.
const DefaultScalarThreshold = 8

func (o *PairOptions) scalarThreshold(lanes int) int {
	t := o.ScalarThreshold
	if t <= 0 {
		t = DefaultScalarThreshold
	}
	if t > lanes {
		t = lanes
	}
	return t
}

func (o *PairOptions) validate() error {
	return o.Gaps.Validate()
}

// diagBounds returns the inclusive 1-based row range [lo, hi] of cells
// on anti-diagonal d (= i + j, i in 1..m, j in 1..n). An empty range
// has lo > hi.
func diagBounds(d, m, n int) (lo, hi int) {
	lo = d - n
	if lo < 1 {
		lo = 1
	}
	hi = d - 1
	if hi > m {
		hi = m
	}
	return lo, hi
}

// checkPair validates kernel inputs shared by all pair kernels.
func checkPair(q, d []uint8, opt *PairOptions) error {
	if err := opt.validate(); err != nil {
		return err
	}
	if len(q) == 0 || len(d) == 0 {
		//swlint:ignore hotpathalloc validation reject is the cold path; warm calls never take this branch
		return fmt.Errorf("core: empty sequence (query %d, database %d residues)", len(q), len(d))
	}
	return nil
}
