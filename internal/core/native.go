package core

import (
	"swvec/internal/aln"
	"swvec/internal/native"
	"swvec/internal/seqio"
	"swvec/internal/submat"
)

// This file is the glue between the core entry points and the
// compiled kernels in internal/native: scratch-row plumbing, shape
// dispatch, and result packaging. The entry points route here when
// opt.Backend == BackendNative and no modeled-only knob (traceback,
// eager reduction) is set; everything else — validation, option
// normalization, the adaptive escalation ladder — stays shared with
// the modeled backend.

// useNativeBatch reports whether a batch call should run on the
// compiled kernels: native backend requested, no modeled-only
// ablation, and tables built by NewCodeTables (a zero-value CodeTables
// has no matrix to score from).
func useNativeBatch(tables *submat.CodeTables, opt *BatchOptions) bool {
	return opt.Backend == BackendNative && !opt.EagerMax && tables.Matrix() != nil
}

// nativeBatch8 runs one query through the 8-bit compiled batch kernel
// of the batch's shape.
//
//sw:hotpath
func nativeBatch8(query []uint8, tables *submat.CodeTables, batch *seqio.Batch, opt *BatchOptions, s *Scratch, res *BatchResult) {
	t8 := s.codes(batch.T)
	n := batch.MaxLen
	stride := batch.Stride()
	h := growE(&s.hRow8, n*stride)
	f := growE(&s.fRow8, n*stride)
	mat := tables.Matrix()
	if stride == seqio.MaxBatchLanes {
		native.Batch8x64(query, t8, n, mat, opt.Gaps.Open, opt.Gaps.Extend, h, f, res.Scores[:], res.Saturated[:])
		return
	}
	native.Batch8x32(query, t8, n, mat, opt.Gaps.Open, opt.Gaps.Extend, h, f, res.Scores[:], res.Saturated[:])
}

// nativeBatch16 runs one query through the 16-bit compiled batch
// kernel of the batch's shape.
//
//sw:hotpath
func nativeBatch16(query []uint8, tables *submat.CodeTables, batch *seqio.Batch, opt *BatchOptions, s *Scratch, res *BatchResult) {
	t8 := s.codes(batch.T)
	n := batch.MaxLen
	stride := batch.Stride()
	h := growE(&s.hRow16, n*stride)
	f := growE(&s.fRow16, n*stride)
	mat := tables.Matrix()
	if stride == seqio.MaxBatchLanes {
		native.Batch16x32(query, t8, n, mat, opt.Gaps.Open, opt.Gaps.Extend, h, f, res.Scores[:], res.Saturated[:])
		return
	}
	native.Batch16x16(query, t8, n, mat, opt.Gaps.Open, opt.Gaps.Extend, h, f, res.Scores[:], res.Saturated[:])
}

// batchScratchOrLocal resolves the caller's scratch, preserving the
// allocate-per-call contract of a nil Scratch.
func batchScratchOrLocal(opt *BatchOptions) *Scratch {
	if opt.Scratch != nil {
		return opt.Scratch
	}
	return &Scratch{}
}

// pairRows8 returns the 8-bit pair kernel's H/F rows (uninitialized;
// the kernel fills them).
func pairRows8(s *Scratch, n int) (h, f []int8) {
	if s == nil {
		//swlint:ignore hotpathalloc nil scratch keeps the allocate-per-call contract; the pipeline always passes one
		return make([]int8, n), make([]int8, n)
	}
	return growE(&s.nph8, n), growE(&s.npf8, n)
}

// pairRows16 returns the 16-bit pair kernel's H/F rows.
func pairRows16(s *Scratch, n int) (h, f []int16) {
	if s == nil {
		//swlint:ignore hotpathalloc nil scratch keeps the allocate-per-call contract; the pipeline always passes one
		return make([]int16, n), make([]int16, n)
	}
	return growE(&s.nph16, n), growE(&s.npf16, n)
}

// pairRows32 returns the 32-bit pair kernel's H/F rows.
func pairRows32(s *Scratch, n int) (h, f []int32) {
	if s == nil {
		//swlint:ignore hotpathalloc nil scratch keeps the allocate-per-call contract; the pipeline always passes one
		return make([]int32, n), make([]int32, n)
	}
	return growE(&s.nph32, n), growE(&s.npf32, n)
}

// nativePair8 runs one pair on the compiled 8-bit kernel. Options must
// already be normalized by pair8Opt (gaps clamped to the byte range).
//
//sw:hotpath
func nativePair8(q, dseq []uint8, mat *submat.Matrix, opt *PairOptions) aln.ScoreResult {
	h, f := pairRows8(opt.Scratch, len(dseq))
	score, sat := native.Pair8(q, dseq, mat, opt.Gaps.Open, opt.Gaps.Extend, h, f)
	return aln.ScoreResult{Score: score, EndQ: -1, EndD: -1, Saturated: sat}
}

// nativePair16 runs one pair on the compiled 16-bit kernel, with
// position tracking when requested.
//
//sw:hotpath
func nativePair16(q, dseq []uint8, mat *submat.Matrix, opt *PairOptions) aln.ScoreResult {
	h, f := pairRows16(opt.Scratch, len(dseq))
	if opt.TrackPosition {
		score, endQ, endD, sat := native.Pair16Pos(q, dseq, mat, opt.Gaps.Open, opt.Gaps.Extend, h, f)
		return aln.ScoreResult{Score: score, EndQ: endQ, EndD: endD, Saturated: sat}
	}
	score, sat := native.Pair16(q, dseq, mat, opt.Gaps.Open, opt.Gaps.Extend, h, f)
	return aln.ScoreResult{Score: score, EndQ: -1, EndD: -1, Saturated: sat}
}

// nativePair32 runs one pair on the compiled 32-bit kernel.
//
//sw:hotpath
func nativePair32(q, dseq []uint8, mat *submat.Matrix, opt *PairOptions) aln.ScoreResult {
	h, f := pairRows32(opt.Scratch, len(dseq))
	score, sat := native.Pair32(q, dseq, mat, opt.Gaps.Open, opt.Gaps.Extend, h, f)
	return aln.ScoreResult{Score: score, EndQ: -1, EndD: -1, Saturated: sat}
}
