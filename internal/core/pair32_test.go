package core

import (
	"testing"

	"swvec/internal/aln"
	"swvec/internal/baselines"
	"swvec/internal/seqio"
	"swvec/internal/vek"
)

func TestPair32MatchesScalar(t *testing.T) {
	g := seqio.NewGenerator(131)
	gaps := aln.DefaultGaps()
	for trial := 0; trial < 30; trial++ {
		q := g.Protein("q", 3+trial*13).Encode(protAlpha)
		d := g.Protein("d", 5+trial*17).Encode(protAlpha)
		want := baselines.ScalarAffine(q, d, b62, gaps)
		got, err := AlignPair32(vek.Bare, q, d, b62, PairOptions{Gaps: gaps})
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want.Score {
			t.Fatalf("trial %d: score %d, want %d", trial, got.Score, want.Score)
		}
	}
}

func TestPair32BeyondInt16Range(t *testing.T) {
	// Scores above 32767 are exact at 32 bits: 4000 tryptophans
	// self-aligned score 44000.
	w := make([]uint8, 4000)
	for i := range w {
		w[i] = protAlpha.Index('W')
	}
	got, err := AlignPair32(vek.Bare, w, w, b62, defaultOpt())
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != 44000 {
		t.Fatalf("score = %d, want 44000", got.Score)
	}
	if got.Saturated {
		t.Error("32-bit kernel must not saturate")
	}
}

func TestPair32Homologs(t *testing.T) {
	g := seqio.NewGenerator(132)
	gaps := aln.Gaps{Open: 5, Extend: 1}
	src := g.Protein("s", 250)
	rel := g.Related(src, "r", 0.15, 0.04)
	q, d := src.Encode(protAlpha), rel.Encode(protAlpha)
	want := baselines.ScalarAffine(q, d, b62, gaps)
	got, err := AlignPair32(vek.Bare, q, d, b62, PairOptions{Gaps: gaps})
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != want.Score {
		t.Fatalf("score %d, want %d", got.Score, want.Score)
	}
}

func TestPair32ScalarThresholdInvariance(t *testing.T) {
	g := seqio.NewGenerator(133)
	q := g.Protein("q", 60).Encode(protAlpha)
	d := g.Protein("d", 110).Encode(protAlpha)
	want := baselines.ScalarAffine(q, d, b62, aln.DefaultGaps()).Score
	for _, thr := range []int{1, 4, 8, 100} {
		got, err := AlignPair32(vek.Bare, q, d, b62, PairOptions{Gaps: aln.DefaultGaps(), ScalarThreshold: thr})
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want {
			t.Fatalf("thr %d: score %d, want %d", thr, got.Score, want)
		}
	}
}

func TestAdaptiveReaches32BitTier(t *testing.T) {
	w := make([]uint8, 3500)
	for i := range w {
		w[i] = protAlpha.Index('W')
	}
	got, _, err := AlignPairAdaptive(vek.Bare, w, w, b62, defaultOpt())
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != 38500 {
		t.Fatalf("adaptive score = %d, want 38500", got.Score)
	}
	if got.Saturated {
		t.Error("32-bit tier must clear the saturation flag")
	}
}

func TestPair32Errors(t *testing.T) {
	if _, err := AlignPair32(vek.Bare, nil, enc("ACD"), b62, defaultOpt()); err == nil {
		t.Error("empty query accepted")
	}
}
