package core

import (
	"testing"

	"swvec/internal/aln"
	"swvec/internal/baselines"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// fuzzCodes maps arbitrary fuzz bytes onto valid residue codes for the
// alphabet, bounded to keep each alignment cheap.
func fuzzCodes(raw []byte, size int, maxLen int) []uint8 {
	if len(raw) > maxLen {
		raw = raw[:maxLen]
	}
	out := make([]uint8, len(raw))
	for i, b := range raw {
		out[i] = uint8(int(b) % size)
	}
	return out
}

// FuzzAlignWidths differentially checks every width instantiation of
// the generic pair kernel — 8x32, 8x64, 16x16, 16x32, 32x8, affine and
// linear, fixed-score and substitution-matrix — against the scalar
// baseline, plus both batch-engine strides on a single-lane batch.
// Saturating engines (8-bit at 127, 16-bit at 32767) must either match
// exactly or report saturation with the true score at or above their
// ceiling.
func FuzzAlignWidths(f *testing.F) {
	// Saturation-edge seeds: long self-similar inputs drive 8-bit
	// scores past 127; short gappy ones exercise the scalar tails.
	f.Add([]byte("MKVLAWMKVLAWMKVLAW"), []byte("MKVLAWMKVLNW"), byte(11), byte(1), false)
	f.Add([]byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"),
		[]byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"), byte(1), byte(1), true)
	f.Add([]byte("WWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWW"),
		[]byte("WWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWW"), byte(0), byte(0), false)
	f.Add([]byte("ACDEFGHIKLMNPQRSTVWY"), []byte("YWVTSRQPNMLKIHGFEDCA"), byte(19), byte(4), false)
	f.Add([]byte("M"), []byte("M"), byte(5), byte(2), true)

	bl62 := submat.Blosum62()
	fixed := submat.MatchMismatch(bl62.Alphabet(), 2, -1)

	f.Fuzz(func(t *testing.T, qraw, draw []byte, openB, extB byte, useFixed bool) {
		mat := bl62
		if useFixed {
			mat = fixed
		}
		size := mat.Alphabet().Size()
		q := fuzzCodes(qraw, size, 300)
		d := fuzzCodes(draw, size, 300)
		if len(q) == 0 || len(d) == 0 {
			t.Skip()
		}
		ext := 1 + int32(extB)%15
		open := ext + int32(openB)%20
		gaps := aln.Gaps{Open: open, Extend: ext}

		checkPairWidths(t, q, d, mat, gaps)
		checkPairWidths(t, q, d, mat, aln.Linear(ext))
		checkBatchStrides(t, q, d, mat, gaps)
	})
}

// checkPairWidths runs one (query, database, matrix, gaps) case
// through all five pair instantiations and compares against the scalar
// oracle.
func checkPairWidths(t *testing.T, q, d []uint8, mat *submat.Matrix, gaps aln.Gaps) {
	t.Helper()
	var want aln.ScoreResult
	if gaps.IsLinear() {
		want = baselines.ScalarLinear(q, d, mat, gaps.Extend)
	} else {
		want = baselines.ScalarAffine(q, d, mat, gaps)
	}
	opt := PairOptions{Gaps: gaps}

	// Exact engines: 16x16, 16x32, 32x8 (scores stay far below their
	// ceilings at these input sizes).
	r16, _, err := AlignPair16(vek.Bare, q, d, mat, opt)
	if err != nil {
		t.Fatalf("pair16: %v", err)
	}
	if r16.Score != want.Score {
		t.Fatalf("pair16 (16x16) score %d != scalar %d (gaps %+v, qlen %d, dlen %d)",
			r16.Score, want.Score, gaps, len(q), len(d))
	}
	r16w, err := AlignPair16W(vek.Bare, q, d, mat, opt)
	if err != nil {
		t.Fatalf("pair16w: %v", err)
	}
	if r16w.Score != want.Score {
		t.Fatalf("pair16w (16x32) score %d != scalar %d (gaps %+v, qlen %d, dlen %d)",
			r16w.Score, want.Score, gaps, len(q), len(d))
	}
	r32, err := AlignPair32(vek.Bare, q, d, mat, opt)
	if err != nil {
		t.Fatalf("pair32: %v", err)
	}
	if r32.Score != want.Score {
		t.Fatalf("pair32 (32x8) score %d != scalar %d (gaps %+v, qlen %d, dlen %d)",
			r32.Score, want.Score, gaps, len(q), len(d))
	}

	// Saturating 8-bit engines at both widths: exact below the ceiling,
	// else flagged with the true score at or above it.
	check8 := func(name string, res aln.ScoreResult) {
		t.Helper()
		if res.Saturated {
			if want.Score < 127 {
				t.Fatalf("%s saturated but scalar score %d is below 127", name, want.Score)
			}
			return
		}
		if res.Score != want.Score {
			t.Fatalf("%s score %d != scalar %d (gaps %+v, qlen %d, dlen %d)",
				name, res.Score, want.Score, gaps, len(q), len(d))
		}
	}
	r8, err := AlignPair8(vek.Bare, q, d, mat, opt)
	if err != nil {
		t.Fatalf("pair8: %v", err)
	}
	check8("pair8 (8x32)", r8)
	r8w, err := AlignPair8W(vek.Bare, q, d, mat, opt)
	if err != nil {
		t.Fatalf("pair8w: %v", err)
	}
	check8("pair8w (8x64)", r8w)
}

// checkBatchStrides aligns d as a single-lane batch at both strides
// (8- and 16-bit engines) and compares lane 0 against the scalar
// oracle under the same saturation contract.
func checkBatchStrides(t *testing.T, q, d []uint8, mat *submat.Matrix, gaps aln.Gaps) {
	t.Helper()
	want := baselines.ScalarAffine(q, d, mat, gaps)
	alpha := mat.Alphabet()
	letters := make([]byte, len(d))
	for i, c := range d {
		letters[i] = alpha.Letter(c)
	}
	db := []seqio.Sequence{{ID: "fuzz", Residues: letters}}
	tables := submat.NewCodeTables(mat)
	for _, lanes := range []int{seqio.BatchLanes, seqio.MaxBatchLanes} {
		b := seqio.MakeBatch(db, []int{0}, alpha, lanes)
		r8, err := AlignBatch8(vek.Bare, q, tables, b, BatchOptions{Gaps: gaps})
		if err != nil {
			t.Fatalf("batch8 lanes=%d: %v", lanes, err)
		}
		if r8.Saturated[0] {
			if want.Score < 127 {
				t.Fatalf("batch8 lanes=%d saturated but scalar score %d is below 127", lanes, want.Score)
			}
		} else if r8.Scores[0] != want.Score {
			t.Fatalf("batch8 lanes=%d score %d != scalar %d (gaps %+v)", lanes, r8.Scores[0], want.Score, gaps)
		}
		r16, err := AlignBatch16(vek.Bare, q, tables, b, BatchOptions{Gaps: gaps})
		if err != nil {
			t.Fatalf("batch16 lanes=%d: %v", lanes, err)
		}
		if r16.Saturated[0] {
			if want.Score < 32767 {
				t.Fatalf("batch16 lanes=%d saturated but scalar score %d is below 32767", lanes, want.Score)
			}
		} else if r16.Scores[0] != want.Score {
			t.Fatalf("batch16 lanes=%d score %d != scalar %d (gaps %+v)", lanes, r16.Scores[0], want.Score, gaps)
		}
	}
}
