package core

import (
	"fmt"

	"swvec/internal/aln"
)

// Traceback direction codes. Bits 0-1 carry the source of H; bit 2
// marks that E at this cell came from a gap extension (not a fresh
// open), bit 3 the same for F. One byte per cell ("recording from
// which cell (up, left, or diagonal) a particular cell was updated",
// §IV-C).
const (
	tbStop = 0 // H == 0
	tbDiag = 1 // H from H(i-1,j-1) + S
	tbLeft = 2 // H from E (gap in query / consume database)
	tbUp   = 3 // H from F (gap in database / consume query)

	tbMask    = 3
	tbEExtend = 4
	tbFExtend = 8
)

// TraceMatrix stores one direction byte per DP cell in the paper's
// diagonal-linearized order: all cells of anti-diagonal d are
// consecutive, diagonals are concatenated in increasing d. This is the
// same memory mapping Fig. 2 uses for H, applied to the traceback
// store.
type TraceMatrix struct {
	m, n int
	// off[d-2] is the codes offset of anti-diagonal d (d in 2..m+n).
	off []int
	// codes is stored as int8 so the kernels can write direction
	// vectors with ordinary partial stores; values are 0..15.
	codes []int8
}

// newTraceMatrix allocates the diagonal-linearized traceback store for
// an m x n problem.
func newTraceMatrix(m, n int) *TraceMatrix {
	//swlint:ignore hotpathalloc traceback store is per-request by design; Fig. 8 charges its memory cost explicitly
	t := &TraceMatrix{m: m, n: n, off: make([]int, m+n-1)}
	total := 0
	for d := 2; d <= m+n; d++ {
		t.off[d-2] = total
		lo, hi := diagBounds(d, m, n)
		if hi >= lo {
			total += hi - lo + 1
		}
	}
	//swlint:ignore hotpathalloc traceback store is per-request by design; Fig. 8 charges its memory cost explicitly
	t.codes = make([]int8, total)
	return t
}

// index returns the storage index of cell (i, j), 1-based.
func (t *TraceMatrix) index(i, j int) int {
	d := i + j
	lo, _ := diagBounds(d, t.m, t.n)
	return t.off[d-2] + (i - lo)
}

// at returns the direction code of cell (i, j), 1-based.
func (t *TraceMatrix) at(i, j int) uint8 { return uint8(t.codes[t.index(i, j)]) }

// diagSlice returns the writable code slice for anti-diagonal d.
func (t *TraceMatrix) diagSlice(d int) []int8 {
	lo, hi := diagBounds(d, t.m, t.n)
	if hi < lo {
		return nil
	}
	start := t.off[d-2]
	return t.codes[start : start+(hi-lo+1)]
}

// Bytes returns the total storage the traceback occupies (the Fig. 8
// memory-cost axis).
func (t *TraceMatrix) Bytes() int { return len(t.codes) }

// Walk recovers the alignment ending at the 0-based cell (endQ, endD)
// with the given score. The walk follows the affine state machine:
// from a match state the stored 2-bit source selects the move; inside
// a gap run the extend bits decide whether the gap continues.
func (t *TraceMatrix) Walk(endQ, endD int, score int32) (*aln.Alignment, error) {
	if endQ < 0 || endD < 0 {
		return &aln.Alignment{Score: score, BegQ: -1, EndQ: -1, BegD: -1, EndD: -1}, nil
	}
	if endQ >= t.m || endD >= t.n {
		return nil, fmt.Errorf("core: traceback start (%d,%d) outside %dx%d matrix", endQ, endD, t.m, t.n)
	}
	a := &aln.Alignment{Score: score, EndQ: endQ, EndD: endD}
	i, j := endQ+1, endD+1 // 1-based walk coordinates
	const (
		stM = iota
		stE
		stF
	)
	state := stM
	steps := 0
	limit := t.m + t.n + 2
	for i >= 1 && j >= 1 {
		if steps++; steps > limit {
			return nil, fmt.Errorf("core: traceback did not terminate within %d steps", limit)
		}
		code := t.at(i, j)
		switch state {
		case stM:
			switch code & tbMask {
			case tbStop:
				a.BegQ, a.BegD = i, j
				a.Reverse()
				return a, nil
			case tbDiag:
				a.AppendOp(aln.OpMatch, 1)
				i--
				j--
			case tbLeft:
				state = stE
			default: // tbUp
				state = stF
			}
		case stE:
			// E(i,j) came from the cell to the left; consume one
			// database residue.
			a.AppendOp(aln.OpDelete, 1)
			if code&tbEExtend == 0 {
				state = stM
			}
			j--
		case stF:
			a.AppendOp(aln.OpInsert, 1)
			if code&tbFExtend == 0 {
				state = stM
			}
			i--
		}
	}
	// Ran into the matrix boundary: the local alignment starts here.
	a.BegQ, a.BegD = i, j
	a.Reverse()
	return a, nil
}
