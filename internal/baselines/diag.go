package baselines

import (
	"swvec/internal/aln"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

const lanes16 = 16

// negInf16 matches the E/F boundary of the core kernels.
const negInf16 = int16(-30000)

// Diag16 is the Wozniak-style anti-diagonal kernel as Parasail ships
// it ("diag"): the same wavefront dependency structure as the paper's
// kernel but without the paper's §III optimizations — substitution
// scores are assembled lane by lane with scalar lookups (no
// reorganized-matrix gather), and the running maximum is reduced
// eagerly on every vector instead of deferred. Deterministic, like the
// paper's kernel, but substantially slower; the Fig. 14 comparison
// quantifies the gap.
func Diag16(mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, g aln.Gaps) aln.ScoreResult {
	res := aln.ScoreResult{EndQ: -1, EndD: -1}
	if len(q) == 0 || len(dseq) == 0 {
		return res
	}
	m, n := len(q), len(dseq)
	slack := lanes16 + 2
	mk := func(fill int16) []int16 {
		b := make([]int16, m+2+slack)
		if fill != 0 {
			for i := range b {
				b[i] = fill
			}
		}
		return b
	}
	hPrev2, hPrev, hCur := mk(0), mk(0), mk(0)
	ePrev, eCur := mk(negInf16), mk(negInf16)
	fPrev, fCur := mk(negInf16), mk(negInf16)
	scoreBuf := make([]int16, lanes16)

	openV := mch.Splat16(int16(g.Open))
	extV := mch.Splat16(int16(g.Extend))
	zeroV := mch.Zero16()
	var best int32

	for d := 2; d <= m+n; d++ {
		lo := d - n
		if lo < 1 {
			lo = 1
		}
		hi := d - 1
		if hi > m {
			hi = m
		}
		r := lo
		for ; r+lanes16 <= hi+1; r += lanes16 {
			// Scalar score assembly: one matrix lookup and one store
			// per lane — the cost the paper's gather/profile paths
			// remove.
			for l := 0; l < lanes16; l++ {
				i := r + l
				scoreBuf[l] = int16(mat.Score(q[i-1], dseq[d-i-1]))
			}
			mch.T.Add(vek.OpScalarLoad, vek.W256, lanes16)
			mch.T.Add(vek.OpScalarStore, vek.W256, lanes16)
			score := mch.Load16(scoreBuf)

			up := mch.Load16(hPrev[r-1:])
			left := mch.Load16(hPrev[r:])
			diagv := mch.Load16(hPrev2[r-1:])
			eIn := mch.Load16(ePrev[r:])
			fIn := mch.Load16(fPrev[r-1:])

			e := mch.Max16(mch.SubSat16(eIn, extV), mch.SubSat16(left, openV))
			f := mch.Max16(mch.SubSat16(fIn, extV), mch.SubSat16(up, openV))
			h := mch.AddSat16(diagv, score)
			h = mch.Max16(h, zeroV)
			h = mch.Max16(h, e)
			h = mch.Max16(h, f)
			mch.Store16(hCur[r:], h)
			mch.Store16(eCur[r:], e)
			mch.Store16(fCur[r:], f)

			// Eager per-vector reduction (the §III-D anti-pattern).
			if v := int32(mch.ReduceMax16(h)); v > best {
				best = v
			}
			mch.T.Add(vek.OpScalar, vek.W256, 1)
		}
		for i := r; i <= hi; i++ {
			j := d - i
			sc := int32(mat.Score(q[i-1], dseq[j-1]))
			e := maxI32(int32(ePrev[i])-g.Extend, int32(hPrev[i])-g.Open)
			f := maxI32(int32(fPrev[i-1])-g.Extend, int32(hPrev[i-1])-g.Open)
			h := maxI32(maxI32(int32(hPrev2[i-1])+sc, 0), maxI32(e, f))
			hCur[i] = int16(h)
			eCur[i] = int16(clampLo(e))
			fCur[i] = int16(clampLo(f))
			if h > best {
				best = h
			}
			mch.T.Add(vek.OpScalar, vek.W256, 10)
			mch.T.Add(vek.OpScalarLoad, vek.W256, 6)
			mch.T.Add(vek.OpScalarStore, vek.W256, 3)
		}
		// Boundary guards for the next diagonal.
		hCur[0] = 0
		eCur[0], fCur[0] = negInf16, negInf16
		if d <= m {
			hCur[d] = 0
			eCur[d], fCur[d] = negInf16, negInf16
		}
		mch.T.Add(vek.OpScalarStore, vek.W256, 6)
		hPrev2, hPrev, hCur = hPrev, hCur, hPrev2
		ePrev, eCur = eCur, ePrev
		fPrev, fCur = fCur, fPrev
	}
	res.Score = best
	return res
}

func clampLo(v int32) int32 {
	if v < -32768 {
		return -32768
	}
	return v
}
