package baselines

import (
	"testing"

	"swvec/internal/aln"
	"swvec/internal/alphabet"
	"swvec/internal/seqio"
	"swvec/internal/submat"
)

var protAlpha = alphabet.ProteinAlphabet()

func enc(s string) []uint8 { return protAlpha.EncodeString(s) }

func TestScalarIdenticalSequences(t *testing.T) {
	m := submat.MatchMismatch(protAlpha, 2, -1)
	q := enc("ACDEFGHIKL")
	res := ScalarAffine(q, q, m, aln.Gaps{Open: 3, Extend: 1})
	if res.Score != 20 {
		t.Errorf("score = %d, want 20", res.Score)
	}
	if res.EndQ != 9 || res.EndD != 9 {
		t.Errorf("end = (%d,%d), want (9,9)", res.EndQ, res.EndD)
	}
}

func TestScalarEmptyInputs(t *testing.T) {
	m := submat.Blosum62()
	if res := ScalarAffine(nil, enc("ACD"), m, aln.DefaultGaps()); res.Score != 0 || res.EndQ != -1 {
		t.Errorf("empty query: %+v", res)
	}
	if res := ScalarAffine(enc("ACD"), nil, m, aln.DefaultGaps()); res.Score != 0 || res.EndD != -1 {
		t.Errorf("empty database: %+v", res)
	}
}

func TestScalarNoPositiveScore(t *testing.T) {
	// Tryptophan against prolines scores negative everywhere: local
	// alignment must return 0.
	m := submat.Blosum62()
	res := ScalarAffine(enc("WWWW"), enc("PPPP"), m, aln.DefaultGaps())
	if res.Score != 0 {
		t.Errorf("score = %d, want 0", res.Score)
	}
	if res.EndQ != -1 || res.EndD != -1 {
		t.Errorf("end = (%d,%d), want (-1,-1)", res.EndQ, res.EndD)
	}
}

func TestScalarHandComputedGap(t *testing.T) {
	// q=AAGGAA d=AAAA, match=2 mismatch=-2, open=2 extend=1.
	// Best: align AAGGAA over AA--AA: 4 matches (8) - gap open 2 -
	// extend 1 = 5; or just AA (4). Hand DP confirms 5.
	m := submat.MatchMismatch(protAlpha, 2, -2)
	res := ScalarAffine(enc("AAGGAA"), enc("AAAA"), m, aln.Gaps{Open: 2, Extend: 1})
	if res.Score != 5 {
		t.Errorf("score = %d, want 5", res.Score)
	}
}

func TestScalarAffineVsLinearConsistency(t *testing.T) {
	// With Open == Extend the affine kernel must agree with the
	// dedicated linear kernel cell by cell.
	m := submat.Blosum62()
	g := seqio.NewGenerator(9)
	for trial := 0; trial < 20; trial++ {
		q := g.Protein("q", 30+trial).Encode(protAlpha)
		d := g.Protein("d", 50+trial*3).Encode(protAlpha)
		a := ScalarAffine(q, d, m, aln.Linear(2))
		l := ScalarLinear(q, d, m, 2)
		if a.Score != l.Score {
			t.Fatalf("trial %d: affine(linear)=%d, linear=%d", trial, a.Score, l.Score)
		}
	}
}

func TestScalarLocalAlignmentScoreNonNegativeAndBounded(t *testing.T) {
	m := submat.Blosum62()
	g := seqio.NewGenerator(10)
	maxSc := int32(m.Max())
	for trial := 0; trial < 10; trial++ {
		q := g.Protein("q", 40).Encode(protAlpha)
		d := g.Protein("d", 80).Encode(protAlpha)
		res := ScalarAffine(q, d, m, aln.DefaultGaps())
		if res.Score < 0 {
			t.Fatalf("negative local score %d", res.Score)
		}
		if limit := maxSc * int32(len(q)); res.Score > limit {
			t.Fatalf("score %d exceeds upper bound %d", res.Score, limit)
		}
	}
}

func TestScalarMatrixAgreesWithScalarAffine(t *testing.T) {
	m := submat.Blosum62()
	g := seqio.NewGenerator(11)
	q := g.Protein("q", 25).Encode(protAlpha)
	d := g.Protein("d", 40).Encode(protAlpha)
	h, res := ScalarMatrix(q, d, m, aln.DefaultGaps())
	fast := ScalarAffine(q, d, m, aln.DefaultGaps())
	if res.Score != fast.Score || res.EndQ != fast.EndQ || res.EndD != fast.EndD {
		t.Fatalf("matrix result %+v != rolling result %+v", res, fast)
	}
	// The matrix cell at the reported end must hold the score.
	cols := len(d) + 1
	if h[(res.EndQ+1)*cols+res.EndD+1] != res.Score {
		t.Fatal("matrix end cell does not hold the optimal score")
	}
	for _, v := range h {
		if v < 0 {
			t.Fatal("negative H cell in local alignment")
		}
	}
}

func TestScalarSubstringAlignment(t *testing.T) {
	// A query that is an exact substring of the database aligns fully.
	m := submat.MatchMismatch(protAlpha, 3, -2)
	d := enc("GGGGACDEFGGGG")
	q := enc("ACDEF")
	res := ScalarAffine(q, d, m, aln.Gaps{Open: 4, Extend: 2})
	if res.Score != 15 {
		t.Errorf("score = %d, want 15", res.Score)
	}
	if res.EndQ != 4 || res.EndD != 8 {
		t.Errorf("end = (%d,%d), want (4,8)", res.EndQ, res.EndD)
	}
}

func TestScalarSymmetry(t *testing.T) {
	// Swapping query and database must not change the optimal score
	// for a symmetric matrix.
	m := submat.Blosum62()
	g := seqio.NewGenerator(12)
	q := g.Protein("q", 33).Encode(protAlpha)
	d := g.Protein("d", 57).Encode(protAlpha)
	ga := aln.DefaultGaps()
	ab := ScalarAffine(q, d, m, ga)
	ba := ScalarAffine(d, q, m, ga)
	if ab.Score != ba.Score {
		t.Fatalf("asymmetric scores: %d vs %d", ab.Score, ba.Score)
	}
}
