package baselines

import (
	"testing"
	"testing/quick"

	"swvec/internal/aln"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

var b62 = submat.Blosum62()

func randomPair(g *seqio.Generator, qlen, dlen int) ([]uint8, []uint8) {
	q := g.Protein("q", qlen).Encode(protAlpha)
	d := g.Protein("d", dlen).Encode(protAlpha)
	return q, d
}

func TestDiag16MatchesScalar(t *testing.T) {
	g := seqio.NewGenerator(61)
	gaps := aln.DefaultGaps()
	for trial := 0; trial < 30; trial++ {
		q, d := randomPair(g, 3+trial*9, 5+trial*13)
		want := ScalarAffine(q, d, b62, gaps)
		got := Diag16(vek.Bare, q, d, b62, gaps)
		if got.Score != want.Score {
			t.Fatalf("trial %d: score %d, want %d", trial, got.Score, want.Score)
		}
	}
}

func TestDiag16Homologs(t *testing.T) {
	g := seqio.NewGenerator(62)
	gaps := aln.Gaps{Open: 5, Extend: 1}
	for trial := 0; trial < 10; trial++ {
		src := g.Protein("s", 150+trial*31)
		rel := g.Related(src, "r", 0.15, 0.04)
		q, d := src.Encode(protAlpha), rel.Encode(protAlpha)
		want := ScalarAffine(q, d, b62, gaps)
		got := Diag16(vek.Bare, q, d, b62, gaps)
		if got.Score != want.Score {
			t.Fatalf("trial %d: score %d, want %d", trial, got.Score, want.Score)
		}
	}
}

func TestScan16MatchesScalar(t *testing.T) {
	g := seqio.NewGenerator(63)
	gaps := aln.DefaultGaps()
	for trial := 0; trial < 30; trial++ {
		q, d := randomPair(g, 3+trial*9, 5+trial*13)
		want := ScalarAffine(q, d, b62, gaps)
		got, _ := Scan16(vek.Bare, q, d, b62, gaps)
		if got.Score != want.Score {
			t.Fatalf("trial %d (%dx%d): score %d, want %d", trial, len(q), len(d), got.Score, want.Score)
		}
	}
}

func TestScan16Homologs(t *testing.T) {
	g := seqio.NewGenerator(64)
	gaps := aln.Gaps{Open: 4, Extend: 1}
	for trial := 0; trial < 10; trial++ {
		src := g.Protein("s", 120+trial*41)
		rel := g.Related(src, "r", 0.2, 0.06)
		q, d := src.Encode(protAlpha), rel.Encode(protAlpha)
		want := ScalarAffine(q, d, b62, gaps)
		got, stats := Scan16(vek.Bare, q, d, b62, gaps)
		if got.Score != want.Score {
			t.Fatalf("trial %d: score %d, want %d", trial, got.Score, want.Score)
		}
		if stats.Columns != len(d) {
			t.Fatalf("columns %d, want %d", stats.Columns, len(d))
		}
	}
}

func TestScan16GapHeavyCorrections(t *testing.T) {
	// A long vertical gap forces F to dominate across chunk
	// boundaries, exercising the correction pass.
	g := seqio.NewGenerator(65)
	src := g.Protein("s", 400)
	q := src.Encode(protAlpha)
	// Database = query with a large block deleted: optimal alignment
	// needs a long insertion (vertical gap).
	d := append(append([]uint8{}, q[:100]...), q[300:]...)
	gaps := aln.Gaps{Open: 3, Extend: 1}
	want := ScalarAffine(q, d, b62, gaps)
	got, stats := Scan16(vek.Bare, q, d, b62, gaps)
	if got.Score != want.Score {
		t.Fatalf("score %d, want %d", got.Score, want.Score)
	}
	if stats.Corrections == 0 {
		t.Error("expected E corrections on a gap-heavy input")
	}
}

func TestStriped16MatchesScalar(t *testing.T) {
	g := seqio.NewGenerator(66)
	gaps := aln.DefaultGaps()
	for trial := 0; trial < 30; trial++ {
		q, d := randomPair(g, 3+trial*9, 5+trial*13)
		want := ScalarAffine(q, d, b62, gaps)
		prof := NewStripedProfile16(b62, q)
		got, _ := Striped16(vek.Bare, prof, d, gaps)
		if got.Score != want.Score {
			t.Fatalf("trial %d (%dx%d): score %d, want %d", trial, len(q), len(d), got.Score, want.Score)
		}
	}
}

func TestStriped16Homologs(t *testing.T) {
	g := seqio.NewGenerator(67)
	gaps := aln.Gaps{Open: 4, Extend: 1}
	for trial := 0; trial < 10; trial++ {
		src := g.Protein("s", 130+trial*37)
		rel := g.Related(src, "r", 0.18, 0.05)
		q, d := src.Encode(protAlpha), rel.Encode(protAlpha)
		want := ScalarAffine(q, d, b62, gaps)
		prof := NewStripedProfile16(b62, q)
		got, _ := Striped16(vek.Bare, prof, d, gaps)
		if got.Score != want.Score {
			t.Fatalf("trial %d: score %d, want %d", trial, got.Score, want.Score)
		}
	}
}

func TestStriped16LazyFVariesWithInput(t *testing.T) {
	// The paper's determinism argument: striped's correction work is
	// data dependent. A gap-heavy input must trigger more lazy-F
	// iterations per column than an unrelated random input.
	g := seqio.NewGenerator(68)
	src := g.Protein("s", 400)
	q := src.Encode(protAlpha)
	gaps := aln.Gaps{Open: 3, Extend: 1}
	prof := NewStripedProfile16(b62, q)

	dGap := append(append([]uint8{}, q[:100]...), q[300:]...)
	_, gapStats := Striped16(vek.Bare, prof, dGap, gaps)

	dRand := g.Protein("d", len(dGap)).Encode(protAlpha)
	_, randStats := Striped16(vek.Bare, prof, dRand, gaps)

	gapRate := float64(gapStats.LazyFIterations) / float64(gapStats.Columns)
	randRate := float64(randStats.LazyFIterations) / float64(randStats.Columns)
	if gapRate <= randRate {
		t.Errorf("lazy-F rate on homologous input (%.2f) should exceed random (%.2f)", gapRate, randRate)
	}
}

func TestAllKernelsAgreeProperty(t *testing.T) {
	g := seqio.NewGenerator(69)
	gaps := aln.DefaultGaps()
	f := func(ql, dl uint8) bool {
		qlen := 1 + int(ql)%150
		dlen := 1 + int(dl)%150
		q, d := randomPair(g, qlen, dlen)
		want := ScalarAffine(q, d, b62, gaps).Score
		if Diag16(vek.Bare, q, d, b62, gaps).Score != want {
			return false
		}
		if got, _ := Scan16(vek.Bare, q, d, b62, gaps); got.Score != want {
			return false
		}
		prof := NewStripedProfile16(b62, q)
		got, _ := Striped16(vek.Bare, prof, d, gaps)
		return got.Score == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKernelsEmptyInputs(t *testing.T) {
	q := enc("ACD")
	gaps := aln.DefaultGaps()
	if got := Diag16(vek.Bare, nil, q, b62, gaps); got.Score != 0 {
		t.Error("diag empty query")
	}
	if got, _ := Scan16(vek.Bare, q, nil, b62, gaps); got.Score != 0 {
		t.Error("scan empty database")
	}
	prof := NewStripedProfile16(b62, q)
	if got, _ := Striped16(vek.Bare, prof, nil, gaps); got.Score != 0 {
		t.Error("striped empty database")
	}
}

func TestStripedProfileLayout(t *testing.T) {
	q := enc("ACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNP") // 33 residues, segLen 3
	prof := NewStripedProfile16(b62, q)
	if prof.SegLen() != 3 {
		t.Fatalf("segLen = %d, want 3", prof.SegLen())
	}
	for c := 0; c < submat.W; c++ {
		for t2 := 0; t2 < prof.SegLen(); t2++ {
			v := prof.prof[c*prof.SegLen()+t2]
			for l := 0; l < lanes16; l++ {
				pos := t2 + l*prof.SegLen()
				want := int16(submat.SentinelScore)
				if pos < len(q) {
					want = int16(b62.Score(q[pos], uint8(c)))
				}
				if v[l] != want {
					t.Fatalf("profile(%d, %d, lane %d) = %d, want %d", c, t2, l, v[l], want)
				}
			}
		}
	}
}

func TestDiagCheaperThanScalarButCostsMoreThanGather(t *testing.T) {
	// Sanity on the op mix: Parasail-diag spends scalar loads on score
	// assembly that the paper's kernel replaces with gathers.
	g := seqio.NewGenerator(70)
	q, d := randomPair(g, 128, 256)
	mch, tal := vek.NewMachine()
	Diag16(mch, q, d, b62, aln.DefaultGaps())
	if tal.N256[vek.OpGather32] != 0 {
		t.Error("Parasail-style diag must not use gathers")
	}
	if tal.N256[vek.OpScalarLoad] == 0 {
		t.Error("diag should assemble scores with scalar loads")
	}
	if tal.N256[vek.OpReduce] == 0 {
		t.Error("diag reduces eagerly; expected reduce ops")
	}
}

func TestStriped8MatchesScalarUnderSaturation(t *testing.T) {
	g := seqio.NewGenerator(71)
	gaps := aln.DefaultGaps()
	for trial := 0; trial < 30; trial++ {
		q, d := randomPair(g, 3+trial*9, 5+trial*13)
		want := ScalarAffine(q, d, b62, gaps).Score
		prof := NewStripedProfile8(b62, q)
		got, _ := Striped8(vek.Bare, prof, d, gaps)
		if want < 127 {
			if got.Score != want {
				t.Fatalf("trial %d: score %d, want %d", trial, got.Score, want)
			}
			if got.Saturated {
				t.Fatalf("trial %d: spurious saturation", trial)
			}
		} else if !got.Saturated {
			t.Fatalf("trial %d: true score %d should saturate", trial, want)
		}
	}
}

func TestStriped8SaturatesOnHomologs(t *testing.T) {
	g := seqio.NewGenerator(72)
	src := g.Protein("s", 300)
	rel := g.Related(src, "r", 0.05, 0.01)
	q, d := src.Encode(protAlpha), rel.Encode(protAlpha)
	if ScalarAffine(q, d, b62, aln.DefaultGaps()).Score <= 127 {
		t.Skip("homolog unexpectedly weak")
	}
	prof := NewStripedProfile8(b62, q)
	got, _ := Striped8(vek.Bare, prof, d, aln.DefaultGaps())
	if !got.Saturated {
		t.Fatalf("expected saturation, score %d", got.Score)
	}
}

func TestStriped8LazyFDataDependence(t *testing.T) {
	g := seqio.NewGenerator(73)
	src := g.Protein("s", 400)
	q := src.Encode(protAlpha)
	gaps := aln.Gaps{Open: 3, Extend: 1}
	prof := NewStripedProfile8(b62, q)
	dGap := append(append([]uint8{}, q[:100]...), q[300:]...)
	_, gapStats := Striped8(vek.Bare, prof, dGap, gaps)
	dRand := g.Protein("d", len(dGap)).Encode(protAlpha)
	_, randStats := Striped8(vek.Bare, prof, dRand, gaps)
	gapRate := float64(gapStats.LazyFIterations) / float64(gapStats.Columns)
	randRate := float64(randStats.LazyFIterations) / float64(randStats.Columns)
	if gapRate <= randRate {
		t.Errorf("lazy-F rate on homologous input (%.2f) should exceed random (%.2f)", gapRate, randRate)
	}
}

func TestStripedProfile8Layout(t *testing.T) {
	q := enc("ACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWY") // 40 residues, segLen 2
	prof := NewStripedProfile8(b62, q)
	if prof.SegLen() != 2 {
		t.Fatalf("segLen = %d, want 2", prof.SegLen())
	}
	for c := 0; c < submat.W; c++ {
		for t2 := 0; t2 < prof.SegLen(); t2++ {
			v := prof.prof[c*prof.SegLen()+t2]
			for l := 0; l < lanes8; l++ {
				pos := t2 + l*prof.SegLen()
				want := int8(submat.SentinelScore)
				if pos < len(q) {
					want = b62.Score(q[pos], uint8(c))
				}
				if v[l] != want {
					t.Fatalf("profile(%d,%d,lane %d) = %d, want %d", c, t2, l, v[l], want)
				}
			}
		}
	}
}
