package baselines

import (
	"swvec/internal/aln"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

const lanes8 = 32

// StripedProfile8 is the 8-bit Farrar profile: 32 lanes, stripe t lane
// l covering query position t + l*segLen.
type StripedProfile8 struct {
	segLen int
	m      int
	prof   []vek.I8x32 // indexed [c*segLen + t]
}

// NewStripedProfile8 builds the 8-bit striped profile.
func NewStripedProfile8(mat *submat.Matrix, q []uint8) *StripedProfile8 {
	m := len(q)
	segLen := (m + lanes8 - 1) / lanes8
	p := &StripedProfile8{segLen: segLen, m: m, prof: make([]vek.I8x32, submat.W*segLen)}
	for c := 0; c < submat.W; c++ {
		for t := 0; t < segLen; t++ {
			var v vek.I8x32
			for l := 0; l < lanes8; l++ {
				pos := t + l*segLen
				if pos < m {
					v[l] = mat.Score(q[pos], uint8(c))
				} else {
					v[l] = submat.SentinelScore
				}
			}
			p.prof[c*segLen+t] = v
		}
	}
	return p
}

// SegLen returns the stripe count.
func (p *StripedProfile8) SegLen() int { return p.segLen }

// Striped8 is the 8-bit Farrar kernel, the configuration Parasail's
// dispatch prefers in practice: 32 cells per issue, saturating at 127
// (callers rerun saturated pairs at 16 bits), with the same
// data-dependent lazy-F loop as Striped16.
func Striped8(mch vek.Machine, prof *StripedProfile8, dseq []uint8, g aln.Gaps) (aln.ScoreResult, StripedStats) {
	res := aln.ScoreResult{EndQ: -1, EndD: -1}
	var stats StripedStats
	if prof.m == 0 || len(dseq) == 0 {
		return res, stats
	}
	if g.Open > 127 {
		g.Open = 127
	}
	segLen := prof.segLen
	openV := mch.Splat8(int8(g.Open))
	extV := mch.Splat8(int8(g.Extend))
	zeroV := mch.Zero8()
	const negInf8 = int8(-128)

	pvHStore := make([]vek.I8x32, segLen)
	pvHLoad := make([]vek.I8x32, segLen)
	pvE := make([]vek.I8x32, segLen)
	negV := mch.Splat8(negInf8)
	for i := range pvE {
		pvE[i] = negV
	}
	mch.T.Add(vek.OpStore, vek.W256, uint64(3*segLen))
	vMax := mch.Zero8()

	for j := 0; j < len(dseq); j++ {
		stats.Columns++
		vF := negV
		vH := mch.ShiftLanesLeft8(pvHStore[segLen-1], 1)
		pvHLoad, pvHStore = pvHStore, pvHLoad
		profRow := prof.prof[int(dseq[j])*segLen : (int(dseq[j])+1)*segLen]

		for t := 0; t < segLen; t++ {
			vH = mch.AddSat8(vH, profRow[t])
			vE := pvE[t]
			vH = mch.Max8(vH, vE)
			vH = mch.Max8(vH, vF)
			vH = mch.Max8(vH, zeroV)
			vMax = mch.Max8(vMax, vH)
			pvHStore[t] = vH
			mch.T.Add(vek.OpLoad, vek.W256, 2)
			mch.T.Add(vek.OpStore, vek.W256, 1)

			vHGap := mch.SubSat8(vH, openV)
			vE = mch.Max8(mch.SubSat8(vE, extV), vHGap)
			pvE[t] = vE
			mch.T.Add(vek.OpStore, vek.W256, 1)
			vF = mch.Max8(mch.SubSat8(vF, extV), vHGap)
			vH = pvHLoad[t]
			mch.T.Add(vek.OpLoad, vek.W256, 1)
		}

		perColumn := 0
	lazy:
		for k := 0; k < lanes8; k++ {
			vF = mch.ShiftLanesLeft8(vF, 1)
			vF = mch.Insert8(vF, 0, negInf8)
			for t := 0; t < segLen; t++ {
				vH := pvHStore[t]
				mch.T.Add(vek.OpLoad, vek.W256, 1)
				vH = mch.Max8(vH, vF)
				pvHStore[t] = vH
				mch.T.Add(vek.OpStore, vek.W256, 1)
				vMax = mch.Max8(vMax, vH)
				stats.LazyFIterations++
				perColumn++
				vHGap := mch.SubSat8(vH, openV)
				vF = mch.SubSat8(vF, extV)
				if mch.MoveMask8(mch.CmpGt8(vF, vHGap)) == 0 {
					break lazy
				}
			}
		}
		if perColumn > stats.MaxLazyFPerColumn {
			stats.MaxLazyFPerColumn = perColumn
		}
	}
	best := int32(mch.ReduceMax8(vMax))
	res.Score = best
	if best >= 127 {
		res.Saturated = true
	}
	return res, stats
}
