package baselines

import (
	"swvec/internal/aln"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// StripedStats reports the speculative behaviour of the striped
// kernel.
type StripedStats struct {
	// Columns is the number of database columns processed.
	Columns int
	// LazyFIterations counts the inner iterations of the lazy-F
	// correction loop. The count depends on the input data — the
	// source of the non-determinism the paper contrasts with its own
	// wavefront kernel (§IV-H).
	LazyFIterations int
	// MaxLazyFPerColumn is the worst single-column correction count.
	MaxLazyFPerColumn int
}

// StripedProfile16 is the Farrar striped query profile: for residue
// code c and stripe index t, lane l holds the substitution score of
// query position t + l*segLen against c.
type StripedProfile16 struct {
	segLen int
	m      int
	prof   []vek.I16x16 // indexed [c*segLen + t]
}

// NewStripedProfile16 builds the striped profile for the encoded
// query.
func NewStripedProfile16(mat *submat.Matrix, q []uint8) *StripedProfile16 {
	m := len(q)
	segLen := (m + lanes16 - 1) / lanes16
	p := &StripedProfile16{segLen: segLen, m: m, prof: make([]vek.I16x16, submat.W*segLen)}
	for c := 0; c < submat.W; c++ {
		for t := 0; t < segLen; t++ {
			var v vek.I16x16
			for l := 0; l < lanes16; l++ {
				pos := t + l*segLen
				if pos < m {
					v[l] = int16(mat.Score(q[pos], uint8(c)))
				} else {
					v[l] = int16(submat.SentinelScore)
				}
			}
			p.prof[c*segLen+t] = v
		}
	}
	return p
}

// SegLen returns the stripe count.
func (p *StripedProfile16) SegLen() int { return p.segLen }

// Striped16 is the Farrar striped Smith-Waterman kernel ("striped" in
// Parasail): the query is laid out in interleaved stripes so the inner
// loop has no dependencies, F is speculatively assumed not to
// propagate across stripes, and a lazy-F correction loop repairs the
// columns where the speculation fails. Fastest of the Parasail trio on
// most inputs, but with data-dependent correction work.
func Striped16(mch vek.Machine, prof *StripedProfile16, dseq []uint8, g aln.Gaps) (aln.ScoreResult, StripedStats) {
	res := aln.ScoreResult{EndQ: -1, EndD: -1}
	var stats StripedStats
	if prof.m == 0 || len(dseq) == 0 {
		return res, stats
	}
	segLen := prof.segLen
	openV := mch.Splat16(int16(g.Open))
	extV := mch.Splat16(int16(g.Extend))
	zeroV := mch.Zero16()

	pvHStore := make([]vek.I16x16, segLen)
	pvHLoad := make([]vek.I16x16, segLen)
	pvE := make([]vek.I16x16, segLen)
	negV := mch.Splat16(negInf16)
	for i := range pvE {
		pvE[i] = negV
	}
	mch.T.Add(vek.OpStore, vek.W256, uint64(3*segLen))
	vMax := mch.Zero16()

	for j := 0; j < len(dseq); j++ {
		stats.Columns++
		vF := negV
		// H(i-1, j-1) for stripe 0 comes from the last stripe of the
		// previous column, shifted by one lane (zero enters lane 0 as
		// the H(0, j-1) boundary).
		vH := mch.ShiftLanesLeft16(pvHStore[segLen-1], 1)
		pvHLoad, pvHStore = pvHStore, pvHLoad
		profRow := prof.prof[int(dseq[j])*segLen : (int(dseq[j])+1)*segLen]

		for t := 0; t < segLen; t++ {
			vH = mch.AddSat16(vH, profRow[t])
			vE := pvE[t]
			vH = mch.Max16(vH, vE)
			vH = mch.Max16(vH, vF)
			vH = mch.Max16(vH, zeroV)
			vMax = mch.Max16(vMax, vH)
			pvHStore[t] = vH
			mch.T.Add(vek.OpLoad, vek.W256, 2)  // profile + E loads
			mch.T.Add(vek.OpStore, vek.W256, 1) // H store

			vHGap := mch.SubSat16(vH, openV)
			vE = mch.Max16(mch.SubSat16(vE, extV), vHGap)
			pvE[t] = vE
			mch.T.Add(vek.OpStore, vek.W256, 1)
			vF = mch.Max16(mch.SubSat16(vF, extV), vHGap)
			vH = pvHLoad[t]
			mch.T.Add(vek.OpLoad, vek.W256, 1)
		}

		// Lazy-F: the speculative inner loop ignored F propagation
		// across stripe boundaries; repair until F can no longer
		// improve any lane.
		perColumn := 0
	lazy:
		for k := 0; k < lanes16; k++ {
			vF = mch.ShiftLanesLeft16(vF, 1)
			vF = mch.Insert16(vF, 0, negInf16)
			for t := 0; t < segLen; t++ {
				vH := pvHStore[t]
				mch.T.Add(vek.OpLoad, vek.W256, 1)
				vH = mch.Max16(vH, vF)
				pvHStore[t] = vH
				mch.T.Add(vek.OpStore, vek.W256, 1)
				vMax = mch.Max16(vMax, vH)
				stats.LazyFIterations++
				perColumn++
				vHGap := mch.SubSat16(vH, openV)
				vF = mch.SubSat16(vF, extV)
				if mch.MoveMask16(mch.CmpGt16(vF, vHGap)) == 0 {
					break lazy
				}
			}
		}
		if perColumn > stats.MaxLazyFPerColumn {
			stats.MaxLazyFPerColumn = perColumn
		}
	}
	best := int32(mch.ReduceMax16(vMax))
	res.Score = best
	if best >= 32767 {
		res.Saturated = true
	}
	return res, stats
}
