package baselines

import (
	"swvec/internal/aln"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// ScanStats reports the speculative behaviour of the scan kernel.
type ScanStats struct {
	// Columns is the number of database columns processed.
	Columns int
	// Corrections counts the vector chunks whose E state had to be
	// repaired after the F prefix pass raised H — the data-dependent
	// correction work that makes scan's runtime non-deterministic
	// (§IV-H).
	Corrections int
}

// Scan16 is the prefix-scan Smith-Waterman kernel in the style of
// Rognes/Daily ("scan" in Parasail): per database column, a first
// vector pass computes H without the vertical gap state, a logarithmic
// weighted prefix-max pass propagates F down the column, and a
// correction pass repairs E wherever F changed H. The amount of
// correction work depends on the input data.
func Scan16(mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, g aln.Gaps) (aln.ScoreResult, ScanStats) {
	res := aln.ScoreResult{EndQ: -1, EndD: -1}
	var stats ScanStats
	if len(q) == 0 || len(dseq) == 0 {
		return res, stats
	}
	m, n := len(q), len(dseq)
	chunks := (m + lanes16 - 1) / lanes16
	padded := chunks * lanes16

	// Column state, padded to whole vectors. Padded rows use sentinel
	// query codes, whose scores are strongly negative.
	hCol := make([]int16, padded)  // H(i, j-1) then H(i, j)
	eCol := make([]int16, padded)  // E(i, j) horizontal state
	hTild := make([]int16, padded) // H without F, current column
	hDiag := make([]int16, padded) // H(i-1, j-1) staging
	qPad := make([]uint8, padded)  // padded query codes
	for i := range eCol {
		eCol[i] = negInf16
	}
	for i := range qPad {
		if i < m {
			qPad[i] = q[i]
		} else {
			qPad[i] = submat.W - 1 // sentinel
		}
	}
	// Sequential query profile (Rognes 2000): prof[c*padded+i] is the
	// score of query position i against residue code c, so a column's
	// scores are consecutive vector loads.
	prof := make([]int16, submat.W*padded)
	for c := 0; c < submat.W; c++ {
		for i := 0; i < padded; i++ {
			prof[c*padded+i] = int16(mat.Score(qPad[i], uint8(c)))
		}
	}
	mch.T.Add(vek.OpScalarStore, vek.W256, uint64(3*padded+submat.W*padded/lanes16))

	openV := mch.Splat16(int16(g.Open))
	extV := mch.Splat16(int16(g.Extend))
	zeroV := mch.Zero16()
	// ramp[l] = (l+1) * extend, for folding the cross-chunk F carry.
	var ramp vek.I16x16
	for l := range ramp {
		ramp[l] = int16(int32(l+1) * g.Extend)
	}
	vMax := mch.Zero16()

	for j := 1; j <= n; j++ {
		dc := dseq[j-1]
		stats.Columns++
		// Pass 1: Htilde = max(0, Hdiag + S, E); E' = max(E-ext,
		// Htilde-open). Hdiag(i) = H(i-1, j-1) = previous column's H
		// shifted down one row.
		carry := int16(0) // H(0, j-1) boundary
		for t := 0; t < chunks; t++ {
			base := t * lanes16
			hPrevChunk := mch.Load16(hCol[base:])
			shifted := mch.ShiftLanesLeft16(hPrevChunk, 1)
			shifted = mch.Insert16(shifted, 0, carry)
			carry = hPrevChunk[lanes16-1]
			mch.T.Add(vek.OpScalar, vek.W256, 1)
			mch.Store16(hDiag[base:], shifted)
		}
		profRow := prof[int(dc)*padded : (int(dc)+1)*padded]
		for t := 0; t < chunks; t++ {
			base := t * lanes16
			score := mch.Load16(profRow[base:])
			diagv := mch.Load16(hDiag[base:])
			eIn := mch.Load16(eCol[base:])
			h := mch.AddSat16(diagv, score)
			h = mch.Max16(h, zeroV)
			h = mch.Max16(h, eIn)
			mch.Store16(hTild[base:], h)
			eOut := mch.Max16(mch.SubSat16(eIn, extV), mch.SubSat16(h, openV))
			mch.Store16(eCol[base:], eOut)
		}
		// Pass 2: weighted prefix-max to propagate F down the column.
		// Within a chunk, log2(lanes) shift-subtract-max steps; across
		// chunks, a scalar carry folded back with the ramp.
		fCarry := int32(negInf16) // F entering the chunk from above
		for t := 0; t < chunks; t++ {
			base := t * lanes16
			h := mch.Load16(hTild[base:])
			// A(i) = Htilde(i) - open is the gap-open candidate from
			// each row; propagate A downward with decay ext per row.
			v := mch.SubSat16(h, openV)
			for s := 1; s < lanes16; s <<= 1 {
				decay := mch.Splat16(int16(clamp32(int32(s)*g.Extend, 32767)))
				// The shift zero-fills the low lanes. A spurious
				// candidate of 0-s*ext is always negative, and F only
				// influences H (>= 0) and the E repair when positive,
				// so the zero fill is harmless.
				shifted := mch.ShiftLanesLeft16(v, s)
				v = mch.Max16(v, mch.SubSat16(shifted, decay))
			}
			// v(l) now holds max_{k<=l} (A(k) - (l-k)*ext) over the
			// chunk. F uses strictly earlier rows: shift down by one
			// (zero fill again harmless).
			fVec := mch.ShiftLanesLeft16(v, 1)
			// Fold the carry from previous chunks:
			// carryFold(l) = fCarry - l*ext.
			carryFold := mch.SubSat16(mch.Splat16(int16(clamp32(fCarry+g.Extend, 32767))), mch.Load16(ramp[:]))
			fVec = mch.Max16(fVec, carryFold)
			hOut := mch.Max16(mch.Load16(hTild[base:]), fVec)
			mch.Store16(hCol[base:], hOut)
			vMax = mch.Max16(vMax, hOut)
			// E correction: wherever F raised H, E' must see the
			// larger H.
			changed := mch.CmpGt16(hOut, h)
			if mch.MoveMask16(changed) != 0 {
				stats.Corrections++
				eIn := mch.Load16(eCol[base:])
				eFix := mch.Max16(eIn, mch.SubSat16(hOut, openV))
				mch.Store16(eCol[base:], eFix)
			}
			// Carry F out of the chunk: the inclusive scan's last lane
			// against the decayed previous carry.
			fCarry = maxI32(int32(v[lanes16-1]), fCarry-int32(lanes16)*g.Extend)
			mch.T.Add(vek.OpScalar, vek.W256, 3)
		}
	}
	best := int32(mch.ReduceMax16(vMax))
	res.Score = best
	if best >= 32767 {
		res.Saturated = true
	}
	return res, stats
}

func clamp32(v, hi int32) int32 {
	if v > hi {
		return hi
	}
	if v < -32768 {
		return -32768
	}
	return v
}
