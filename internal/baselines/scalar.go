// Package baselines implements the Smith-Waterman kernels the paper
// compares against (§IV-H): a scalar golden reference, the Wozniak
// anti-diagonal kernel ("diag"), the prefix-scan kernel ("scan"), and
// the Farrar striped kernel ("striped") with its speculative lazy-F
// correction loop. All vector kernels are built on the same emulated
// vector machine as the paper's kernel, mirroring Parasail's "modular
// functions within a unified framework" fairness argument.
package baselines

import (
	"swvec/internal/aln"
	"swvec/internal/submat"
)

// ScalarAffine computes the optimal local alignment score of encoded
// query q against encoded database sequence d under the affine gap
// model, using the plain O(nm) Gotoh recurrence. It is the golden
// oracle every vector kernel is verified against.
func ScalarAffine(q, d []uint8, mat *submat.Matrix, g aln.Gaps) aln.ScoreResult {
	res := aln.ScoreResult{EndQ: -1, EndD: -1}
	if len(q) == 0 || len(d) == 0 {
		return res
	}
	// hRow[j] holds H(i-1, j) while computing row i; fCol[j] holds
	// F(i-1, j) (vertical gap state per column, the paper's F array
	// sized by the database).
	hRow := make([]int32, len(d)+1)
	fCol := make([]int32, len(d)+1)
	const negInf = int32(-1 << 30)
	for j := range fCol {
		fCol[j] = negInf
	}
	for i := 1; i <= len(q); i++ {
		var diag int32 // H(i-1, j-1)
		e := negInf    // E(i, j): horizontal gap state along the row
		var hCur int32 // H(i, j-1)
		for j := 1; j <= len(d); j++ {
			sc := int32(mat.Score(q[i-1], d[j-1]))
			h := diag + sc
			if h < 0 {
				h = 0
			}
			// Horizontal gap: extend e or open from H(i, j-1).
			e = maxI32(e-g.Extend, hCur-g.Open)
			// Vertical gap: extend fCol[j] or open from H(i-1, j).
			fCol[j] = maxI32(fCol[j]-g.Extend, hRow[j]-g.Open)
			if e > h {
				h = e
			}
			if fCol[j] > h {
				h = fCol[j]
			}
			diag = hRow[j]
			hRow[j] = h
			hCur = h
			if h > res.Score {
				res.Score = h
				res.EndQ = i - 1
				res.EndD = j - 1
			}
		}
	}
	return res
}

// ScalarLinear computes the optimal local alignment score under the
// linear gap model with per-residue cost ext.
func ScalarLinear(q, d []uint8, mat *submat.Matrix, ext int32) aln.ScoreResult {
	res := aln.ScoreResult{EndQ: -1, EndD: -1}
	if len(q) == 0 || len(d) == 0 {
		return res
	}
	hRow := make([]int32, len(d)+1)
	for i := 1; i <= len(q); i++ {
		var diag int32
		var hCur int32
		for j := 1; j <= len(d); j++ {
			sc := int32(mat.Score(q[i-1], d[j-1]))
			h := diag + sc
			if v := hCur - ext; v > h {
				h = v
			}
			if v := hRow[j] - ext; v > h {
				h = v
			}
			if h < 0 {
				h = 0
			}
			diag = hRow[j]
			hRow[j] = h
			hCur = h
			if h > res.Score {
				res.Score = h
				res.EndQ = i - 1
				res.EndD = j - 1
			}
		}
	}
	return res
}

// ScalarMatrix computes the full H matrix under the affine model and
// returns it as a (len(q)+1) x (len(d)+1) row-major slice together
// with the score result. Tests use it to validate traceback paths and
// the diagonal-linearized storage of the main kernel.
func ScalarMatrix(q, d []uint8, mat *submat.Matrix, g aln.Gaps) ([]int32, aln.ScoreResult) {
	rows, cols := len(q)+1, len(d)+1
	h := make([]int32, rows*cols)
	e := make([]int32, rows*cols)
	f := make([]int32, rows*cols)
	const negInf = int32(-1 << 30)
	for idx := range e {
		e[idx] = negInf
		f[idx] = negInf
	}
	res := aln.ScoreResult{EndQ: -1, EndD: -1}
	for i := 1; i < rows; i++ {
		for j := 1; j < cols; j++ {
			sc := int32(mat.Score(q[i-1], d[j-1]))
			best := h[(i-1)*cols+j-1] + sc
			if best < 0 {
				best = 0
			}
			e[i*cols+j] = maxI32(e[i*cols+j-1]-g.Extend, h[i*cols+j-1]-g.Open)
			f[i*cols+j] = maxI32(f[(i-1)*cols+j]-g.Extend, h[(i-1)*cols+j]-g.Open)
			if e[i*cols+j] > best {
				best = e[i*cols+j]
			}
			if f[i*cols+j] > best {
				best = f[i*cols+j]
			}
			h[i*cols+j] = best
			if best > res.Score {
				res.Score = best
				res.EndQ = i - 1
				res.EndD = j - 1
			}
		}
	}
	return h, res
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
