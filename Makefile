GO ?= go

.PHONY: all verify fmt vet lint portable race chaos cluster-e2e fuzz bench bench-smoke bench-backends bench-kernels benchcheck ci

all: verify

# Tier-1 gate: everything compiles and every test passes.
verify:
	$(GO) build ./...
	$(GO) test ./...

# Formatting gate: fails if any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Repo-specific invariants (DESIGN.md §11): hot-path allocations,
# lane-width derivation, scheduler goroutine/channel lifecycle, metrics
# atomicity, compiler-verified bounds-check freedom, goroutine
# cancellation, failpoint registry hygiene, and the wire-code failure
# contract. Runs plain and with -tags failpoint (chaos-only code is
# invisible to the plain load), then ratchets the suppression count
# against SWLINT_baseline.json — exactly the sequence CI runs, so a
# local `make lint` failure is a CI failure.
lint:
	$(GO) run ./cmd/swlint ./...
	$(GO) run ./cmd/swlint -tags failpoint -json SWLINT_ci.json ./...
	$(GO) run ./scripts/swlintcheck -baseline SWLINT_baseline.json -current SWLINT_ci.json -out SWLINTCHECK_ci.json

# Portability gate: everything must build without cgo.
portable:
	CGO_ENABLED=0 $(GO) build ./...

# Race-enabled pass over every package. -short skips the long 32-bit
# escalation alignment and the whole-module analysis reload.
race:
	$(GO) test -race -short ./...

# Chaos pass: the failpoint build compiles in the fault-injection
# sites, and the chaos suites force kernel panics, transient faults,
# and breaker trips under the race detector (DESIGN.md §12).
chaos:
	$(GO) test -race -short -tags failpoint ./...

# Cluster chaos gate: real swserver shard processes behind swrouter,
# concurrent queries, one process SIGKILLed mid-search. At replicas=1
# merged results must stay bit-identical to single-node search over
# the shards that answered, with the dead shard reported partial; at
# replicas=2 killing a primary must cost nothing — every response
# complete via failover to the surviving replica. No goroutine leaks
# (race detector + failpoints on).
cluster-e2e:
	$(GO) test -race -tags failpoint -run 'TestClusterE2E' -v ./cmd/swrouter

# Differential fuzz smoke: every width instantiation of the generic
# kernel against the scalar baseline, and the lenient FASTA decoder
# against arbitrary input, for a few seconds each.
fuzz:
	$(GO) test -fuzz=FuzzAlignWidths -fuzztime=10s -run FuzzAlignWidths ./internal/core
	$(GO) test -fuzz=FuzzNativeVsModeled -fuzztime=10s -run FuzzNativeVsModeled ./internal/core
	$(GO) test -fuzz=FuzzKernelsVsDiagonal -fuzztime=10s -run FuzzKernelsVsDiagonal ./internal/core
	$(GO) test -fuzz=FuzzFASTADecode -fuzztime=10s -run FuzzFASTADecode ./internal/seqio

# Figure + kernel benchmarks with allocation reporting.
bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# One-iteration search + backend-comparison benchmarks streamed into
# BENCH_ci.json — the CI perf-trajectory artifact. Sub-benchmark names
# carry backend=/width= fields so entries are comparable across PRs.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkSearch|BenchmarkBackends' -benchtime 1x -json . > BENCH_ci.json
	@grep -q '"Action":"pass"' BENCH_ci.json || { echo "bench smoke failed"; exit 1; }
	$(GO) test -run '^$$' -bench 'BenchmarkSearch(EndToEnd|Pipeline|Scatter)' -benchtime 1x -json . >> BENCH_ci.json

# Full native-vs-modeled kernel comparison (pair and batch, both
# widths) with allocation reporting.
bench-backends:
	$(GO) test -run '^$$' -bench 'BenchmarkBackends' -benchmem .

# Kernel-family comparison: every search benchmark across the planner's
# auto choice and the forced diagonal/striped/lazyf families, so the
# planner threshold (sched.plannerStripedMinQuery) can be tuned against
# measurements.
bench-kernels:
	$(GO) test -run '^$$' -bench 'BenchmarkSearchEndToEnd|BenchmarkSearchPipeline|BenchmarkBackends' -benchmem .

# Regression gate: this run's BENCH_ci.json against the committed
# BENCH_baseline.json; >30% ns/op on any end-to-end search benchmark
# fails. Regenerate the baseline (make bench-smoke, then copy) when a
# deliberate perf change lands.
benchcheck:
	$(GO) run ./scripts/benchcheck -baseline BENCH_baseline.json -current BENCH_ci.json -out BENCHCHECK_ci.json

ci: fmt verify vet lint portable race chaos cluster-e2e fuzz bench-smoke benchcheck
