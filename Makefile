GO ?= go

.PHONY: all verify fmt vet race fuzz bench ci

all: verify

# Tier-1 gate: everything compiles and every test passes.
verify:
	$(GO) build ./...
	$(GO) test ./...

# Formatting gate: fails if any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Race-enabled pass over the concurrent packages (the streaming search
# pipeline, the batch stream, the kernels it shares scratch with, and
# the public API). -short skips the long 32-bit escalation alignment.
race:
	$(GO) test -race -short ./internal/sched ./internal/seqio ./internal/core .

# Differential fuzz smoke: every width instantiation of the generic
# kernel against the scalar baseline for a few seconds.
fuzz:
	$(GO) test -fuzz=FuzzAlignWidths -fuzztime=10s -run FuzzAlignWidths ./internal/core

# Figure + kernel benchmarks with allocation reporting.
bench:
	$(GO) test -bench . -benchmem -run '^$$' .

ci: fmt verify vet race fuzz
