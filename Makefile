GO ?= go

.PHONY: all verify vet race bench ci

all: verify

# Tier-1 gate: everything compiles and every test passes.
verify:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-enabled pass over the concurrent packages (the streaming search
# pipeline, the batch stream, the kernels it shares scratch with, and
# the public API). -short skips the long 32-bit escalation alignment.
race:
	$(GO) test -race -short ./internal/sched ./internal/seqio ./internal/core .

# Figure + kernel benchmarks with allocation reporting.
bench:
	$(GO) test -bench . -benchmem -run '^$$' .

ci: verify vet race
