module swvec

go 1.22
