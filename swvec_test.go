package swvec

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	al, err := New()
	if err != nil {
		t.Fatal(err)
	}
	a, err := al.Align([]byte("MKVLAWGQHE"), []byte("MKVLAWGQHE"))
	if err != nil {
		t.Fatal(err)
	}
	if a.CigarString() != "10M" {
		t.Errorf("cigar = %q", a.CigarString())
	}
	if a.Score <= 0 {
		t.Errorf("score = %d", a.Score)
	}
	sc, err := al.Score([]byte("MKVLAWGQHE"), []byte("MKVLAWGQHE"))
	if err != nil {
		t.Fatal(err)
	}
	if sc != a.Score {
		t.Errorf("Score %d != Align score %d", sc, a.Score)
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := New(WithGaps(0, 0)); err == nil {
		t.Error("zero gaps accepted")
	}
	if _, err := New(WithMatrix(nil)); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := New(WithThreads(-1)); err == nil {
		t.Error("negative threads accepted")
	}
	if _, err := New(WithBatchBlock(-5)); err == nil {
		t.Error("negative block accepted")
	}
}

func TestScoreRejectsInvalidResidues(t *testing.T) {
	al, _ := New()
	if _, err := al.Score([]byte("MK1LAW"), []byte("MKVLAW")); err == nil {
		t.Error("digit residue accepted")
	}
	if _, err := al.Score(nil, []byte("MKVLAW")); err == nil {
		t.Error("empty query accepted")
	}
}

func TestSearchEndToEnd(t *testing.T) {
	al, err := New(WithThreads(4), WithLengthSortedBatches())
	if err != nil {
		t.Fatal(err)
	}
	db := GenerateDatabase(7, 50)
	res, err := al.Search([]byte(string(db[17].Residues)), db)
	if err != nil {
		t.Fatal(err)
	}
	top := res.TopHits(1)
	if top[0].SeqIndex != 17 {
		t.Errorf("self-search should rank sequence 17 first, got %d", top[0].SeqIndex)
	}
	if res.GCUPS() <= 0 {
		t.Error("no throughput recorded")
	}
}

func TestSearchAllEndToEnd(t *testing.T) {
	al, err := New(WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	db := GenerateDatabase(8, 40)
	queries := [][]byte{db[3].Residues, db[30].Residues}
	res, err := al.SearchAll(queries, db)
	if err != nil {
		t.Fatal(err)
	}
	// Each query's best hit must be itself.
	for qi := range queries {
		self := []int{3, 30}[qi]
		best, bestIdx := int32(-1), -1
		for si, sc := range res.Scores[qi] {
			if sc > best {
				best, bestIdx = sc, si
			}
		}
		if bestIdx != self {
			t.Errorf("query %d: best hit %d, want %d", qi, bestIdx, self)
		}
	}
}

func TestLinearGapOption(t *testing.T) {
	al, err := New(WithLinearGap(2))
	if err != nil {
		t.Fatal(err)
	}
	if !al.Gaps().IsLinear() {
		t.Error("linear gap option did not apply")
	}
	if _, err := al.Score([]byte("ACDEFG"), []byte("ACDEFG")); err != nil {
		t.Fatal(err)
	}
}

func TestMatchMismatchMatrixOption(t *testing.T) {
	al, err := New(WithMatrix(MatchMismatch(2, -1)), WithGaps(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := al.Score([]byte("ACDEF"), []byte("ACDEF"))
	if err != nil {
		t.Fatal(err)
	}
	if sc != 10 {
		t.Errorf("score = %d, want 10", sc)
	}
}

func TestDNAAlignment(t *testing.T) {
	al, err := New(WithMatrix(DNAMatrix()), WithGaps(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := al.Score([]byte("ACGTACGT"), []byte("ACGTACGT"))
	if err != nil {
		t.Fatal(err)
	}
	if sc != 16 {
		t.Errorf("DNA self-score = %d, want 16", sc)
	}
}

func TestParseMatrixRoundTrip(t *testing.T) {
	src := "   A  C\nA  5 -4\nC -4  5\n"
	m, err := ParseMatrix(strings.NewReader(src), "custom")
	if err != nil {
		t.Fatal(err)
	}
	al, err := New(WithMatrix(m), WithGaps(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := al.Score([]byte("ACAC"), []byte("ACAC"))
	if err != nil {
		t.Fatal(err)
	}
	if sc != 20 {
		t.Errorf("score = %d, want 20", sc)
	}
}

func TestFastaHelpers(t *testing.T) {
	db := GenerateDatabase(9, 5)
	var buf bytes.Buffer
	if err := WriteFasta(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFasta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 5 {
		t.Fatalf("round trip lost records: %d", len(back))
	}
}

func TestGenerateQueries(t *testing.T) {
	qs := GenerateQueries(1)
	if len(qs) != 10 {
		t.Fatalf("queries = %d, want 10", len(qs))
	}
}

func TestAlignRescoresViaSpans(t *testing.T) {
	al, _ := New()
	db := GenerateDatabase(10, 2)
	a, err := al.Align(db[0].Residues[:80], db[0].Residues)
	if err != nil {
		t.Fatal(err)
	}
	if a.QuerySpan() != a.EndQ-a.BegQ+1 {
		t.Errorf("query span %d inconsistent with [%d,%d]", a.QuerySpan(), a.BegQ, a.EndQ)
	}
	if a.DatabaseSpan() != a.EndD-a.BegD+1 {
		t.Errorf("database span %d inconsistent with [%d,%d]", a.DatabaseSpan(), a.BegD, a.EndD)
	}
}

func TestScoreRescues16BitSaturation(t *testing.T) {
	// Two identical 3000-residue tryptophan runs score 33000, beyond
	// int16: Score must fall back to the exact scalar kernel.
	al, _ := New()
	w := make([]byte, 3000)
	for i := range w {
		w[i] = 'W'
	}
	sc, err := al.Score(w, w)
	if err != nil {
		t.Fatal(err)
	}
	if sc != 33000 {
		t.Fatalf("score = %d, want 33000", sc)
	}
}

func TestAlignerAccessors(t *testing.T) {
	al, _ := New()
	if al.Matrix() != Blosum62() {
		t.Error("default matrix should be BLOSUM62")
	}
	if al.Gaps() != DefaultGaps() {
		t.Error("default gaps mismatch")
	}
}

func TestSearchContextPublicAPI(t *testing.T) {
	al, err := New(WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	db := GenerateDatabase(7, 40)
	query := db[3].Residues[:80]

	// Uncanceled context: identical to Search, with a populated Stats
	// snapshot on the result.
	res, err := al.SearchContext(context.Background(), query, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cells() != res.Cells || res.Cells == 0 {
		t.Fatalf("Stats cells %d vs result cells %d", res.Stats.Cells(), res.Cells)
	}
	if res.Stats.BatchesProduced == 0 || res.Stats.Batches8 == 0 {
		t.Fatalf("missing batch counters: %+v", res.Stats)
	}

	// Pre-canceled context: partial result plus the ctx error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err = al.SearchContext(ctx, query, db)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Hits) != len(db) {
		t.Fatal("canceled search must return the partial result")
	}

	// SearchAllContext honors deadlines the same way.
	mres, err := al.SearchAllContext(ctx, [][]byte{query}, db)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchAllContext err = %v, want context.Canceled", err)
	}
	if mres == nil || len(mres.Scores) != 1 {
		t.Fatal("canceled multi-search must return the partial result")
	}
}

func TestGlobalStatsAccumulate(t *testing.T) {
	al, err := New()
	if err != nil {
		t.Fatal(err)
	}
	db := GenerateDatabase(8, 16)
	before := GlobalStats()
	if _, err := al.Search(db[0].Residues[:60], db); err != nil {
		t.Fatal(err)
	}
	after := GlobalStats()
	if after.Searches <= before.Searches || after.Cells() <= before.Cells() {
		t.Fatalf("global counters did not advance: before %+v after %+v", before, after)
	}
	PublishMetrics()
	PublishMetrics() // idempotent
}
