// Package swvec is a vectorized Smith-Waterman sequence-alignment
// library reproducing "Further Optimizations and Analysis of
// Smith-Waterman with Vector Extensions" (IPDPS 2024). The alignment
// kernels run on an emulated, instruction-counting vector machine that
// mirrors AVX2/AVX-512, implementing the paper's wavefront kernel with
// diagonal memory indexing, the reorganized substitution matrix with
// gather and query-profile scoring, an interleaved 32-sequence batch
// engine, variable 8/16-bit width, optional traceback, and the
// Parasail-style diag/scan/striped comparison kernels.
//
// Quick start:
//
//	al, err := swvec.New(swvec.WithGaps(11, 1))
//	if err != nil { ... }
//	alignment, err := al.Align([]byte("MKVLAW"), []byte("MKVLNW"))
//	fmt.Println(alignment.Score, alignment.CigarString())
package swvec

import (
	"context"
	"fmt"
	"io"

	"swvec/internal/aln"
	"swvec/internal/alphabet"
	"swvec/internal/core"
	"swvec/internal/metrics"
	"swvec/internal/sched"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// Re-exported domain types. They are aliases of the internal
// implementations so values flow between the public API and the
// low-level packages without copying.
type (
	// Gaps holds affine gap penalties as positive costs; a gap of
	// length k costs Open + (k-1)*Extend.
	Gaps = aln.Gaps
	// Alignment is a local alignment with coordinates and CIGAR.
	Alignment = aln.Alignment
	// CigarOp is one run-length-encoded traceback operation.
	CigarOp = aln.CigarOp
	// ScoreResult is a score-only alignment outcome.
	ScoreResult = aln.ScoreResult
	// Sequence is a named residue sequence.
	Sequence = seqio.Sequence
	// Matrix is a substitution matrix in the reorganized 32-wide
	// layout.
	Matrix = submat.Matrix
	// SearchResult is the outcome of a database search.
	SearchResult = sched.Result
	// MultiSearchResult is the outcome of a batched multi-query
	// search.
	MultiSearchResult = sched.MultiResult
	// Hit is one database sequence's search outcome.
	Hit = sched.Hit
	// SearchStats is the per-stage counter snapshot attached to search
	// results (batches, cells by width, saturations, queue high-water
	// mark, per-stage wall times).
	SearchStats = metrics.Snapshot
	// Quarantine is one database sequence the self-healing search
	// pipeline isolated after an alignment stage failed on its batch;
	// see SearchResult.Quarantined.
	Quarantine = sched.Quarantine
	// DecodeOptions configures the lenient FASTA decoder.
	DecodeOptions = seqio.DecodeOptions
	// DecodeReport summarizes what DecodeFasta skipped.
	DecodeReport = seqio.DecodeReport
	// SkippedRecord is one FASTA record the lenient decoder rejected.
	SkippedRecord = seqio.SkippedRecord
	// Backend selects the execution backend; see WithBackend.
	Backend = core.Backend
	// Kernel selects the kernel family; see WithKernel.
	Kernel = core.Kernel
)

// Execution backends. Auto resolves to the compiled native kernels for
// serving paths and to the modeled vek machine wherever instruction
// tallies are requested; the explicit values force a backend.
const (
	BackendAuto    = core.BackendAuto
	BackendModeled = core.BackendModeled
	BackendNative  = core.BackendNative
)

// ParseBackend parses a backend name: "auto" (or ""), "modeled", or
// "native".
func ParseBackend(s string) (Backend, error) { return core.ParseBackend(s) }

// Kernel families. Auto lets the per-query planner pick: short
// queries, linear gaps, and instrumented or modeled runs stay on the
// diagonal (anti-diagonal wavefront) family; long affine-gap queries
// take a striped variant — classic lazy-F when gap opens are costly
// enough that corrections rarely fire, the deconstructed
// shift-subtract-max scan otherwise. The explicit values force a
// family.
const (
	KernelAuto     = core.KernelAuto
	KernelDiagonal = core.KernelDiagonal
	KernelStriped  = core.KernelStriped
	KernelLazyF    = core.KernelLazyF
)

// ParseKernel parses a kernel family name: "auto" (or ""), "diagonal",
// "striped", or "lazyf".
func ParseKernel(s string) (Kernel, error) { return core.ParseKernel(s) }

// PublishMetrics registers the process-wide search counters as the
// "swvec.search" expvar, for binaries that serve /debug/vars.
// Idempotent.
func PublishMetrics() { metrics.Publish() }

// GlobalStats returns a snapshot of the process-wide search counters
// accumulated across every search run so far.
func GlobalStats() SearchStats { return metrics.Global.Snapshot() }

// DefaultGaps returns the protein defaults (open 11, extend 1).
func DefaultGaps() Gaps { return aln.DefaultGaps() }

// Blosum62 returns the BLOSUM62 substitution matrix.
func Blosum62() *Matrix { return submat.Blosum62() }

// DNAMatrix returns the default DNA matrix (+2/-3, N neutral).
func DNAMatrix() *Matrix { return submat.DNADefault() }

// MatchMismatch returns a fixed-score protein matrix; kernels use the
// gather-free compare-and-blend fast path with it.
func MatchMismatch(match, mismatch int8) *Matrix {
	return submat.MatchMismatch(alphabet.ProteinAlphabet(), match, mismatch)
}

// ParseMatrix reads an NCBI-format substitution matrix for the protein
// alphabet.
func ParseMatrix(r io.Reader, name string) (*Matrix, error) {
	return submat.Parse(r, name, alphabet.ProteinAlphabet())
}

// ReadFasta parses FASTA records leniently: malformed records are
// skipped. Use DecodeFasta to see what was skipped or to enforce
// strictness and size limits.
func ReadFasta(r io.Reader) ([]Sequence, error) { return seqio.ReadFasta(r) }

// DecodeFasta parses FASTA records under the given options. In the
// default lenient mode malformed or oversized records are skipped,
// counted, and itemized in the report; with Strict set the first bad
// record fails the decode.
func DecodeFasta(r io.Reader, opt DecodeOptions) ([]Sequence, *DecodeReport, error) {
	return seqio.DecodeFasta(r, opt)
}

// WriteFasta writes FASTA records with 60-column wrapping.
func WriteFasta(w io.Writer, seqs []Sequence) error { return seqio.WriteFasta(w, seqs) }

// TotalResidues sums the residue counts of seqs.
func TotalResidues(seqs []Sequence) int64 { return seqio.TotalResidues(seqs) }

// GenerateDatabase produces a deterministic synthetic protein database
// with Swiss-Prot-like length and composition statistics.
func GenerateDatabase(seed int64, count int) []Sequence {
	return seqio.NewGenerator(seed).Database(count)
}

// GenerateQueries produces the evaluation's standard 10-protein query
// set (lengths 35..5000).
func GenerateQueries(seed int64) []Sequence { return seqio.StandardQueries(seed) }

// Aligner is the configured entry point for alignments and searches.
// It is safe for concurrent use.
type Aligner struct {
	mat     *submat.Matrix
	gaps    Gaps
	threads int
	block   int
	sortLen bool
	depth   int
	width   int
	backend Backend
	kernel  Kernel
}

// Option configures an Aligner.
type Option func(*Aligner) error

// WithMatrix selects the substitution matrix (default BLOSUM62).
func WithMatrix(m *Matrix) Option {
	return func(a *Aligner) error {
		if m == nil {
			return fmt.Errorf("swvec: nil matrix")
		}
		a.mat = m
		return nil
	}
}

// WithGaps sets affine gap penalties (positive costs).
func WithGaps(open, extend int32) Option {
	return func(a *Aligner) error {
		a.gaps = Gaps{Open: open, Extend: extend}
		return a.gaps.Validate()
	}
}

// WithLinearGap selects the linear gap model with per-residue cost
// ext; the kernels switch to their reduced variants.
func WithLinearGap(ext int32) Option {
	return func(a *Aligner) error {
		a.gaps = aln.Linear(ext)
		return a.gaps.Validate()
	}
}

// WithThreads sets the worker count for searches (default
// GOMAXPROCS).
func WithThreads(n int) Option {
	return func(a *Aligner) error {
		if n < 0 {
			return fmt.Errorf("swvec: negative thread count %d", n)
		}
		a.threads = n
		return nil
	}
}

// WithBatchBlock sets the batch engine's column block size (the cache
// tuning knob; 0 = unblocked).
func WithBatchBlock(cols int) Option {
	return func(a *Aligner) error {
		if cols < 0 {
			return fmt.Errorf("swvec: negative block size %d", cols)
		}
		a.block = cols
		return nil
	}
}

// WithLengthSortedBatches groups similar-length database sequences
// into the same batch, reducing padding work. The search pipeline
// streams the batches from a sorted index permutation; the database
// itself is never copied or reordered.
func WithLengthSortedBatches() Option {
	return func(a *Aligner) error {
		a.sortLen = true
		return nil
	}
}

// WithPipelineDepth sets how many transposed batches may be buffered
// between the streaming batch producer and the search worker pool
// (default: twice the worker count). Deeper pipelines smooth uneven
// batch costs at the price of more batches in flight.
func WithPipelineDepth(n int) Option {
	return func(a *Aligner) error {
		if n < 0 {
			return fmt.Errorf("swvec: negative pipeline depth %d", n)
		}
		a.depth = n
		return nil
	}
}

// WithVectorWidth selects the vector register width of the search
// pipeline's batch engines: 256 (32-lane batches), 512 (64-lane
// batches), or 0 to auto-detect from the native architecture model.
// Every search stage — 8-bit stream and 16-bit rescue — runs at the
// selected width through the same generic kernels.
func WithVectorWidth(bits int) Option {
	return func(a *Aligner) error {
		switch bits {
		case 0, 256, 512:
			a.width = bits
			return nil
		}
		return fmt.Errorf("swvec: unsupported vector width %d (want 0, 256, or 512)", bits)
	}
}

// WithBackend selects the execution backend. The default (BackendAuto)
// runs alignments on the compiled native Go kernels, which produce
// bit-identical scores, saturation flags, and hit positions to the
// modeled vector machine at a fraction of the cost; BackendModeled
// forces the instrumented vek machine (required for instruction
// tallies, traceback always uses it). Figure and profiling runs that
// instrument the pipeline resolve Auto back to the modeled backend.
func WithBackend(b Backend) Option {
	return func(a *Aligner) error {
		switch b {
		case BackendAuto, BackendModeled, BackendNative:
			a.backend = b
			return nil
		}
		return fmt.Errorf("swvec: unknown backend %d", uint8(b))
	}
}

// WithKernel selects the kernel family for alignments and searches.
// The default (KernelAuto) lets the per-query planner choose — the
// resolved choice is reported in SearchResult.Kernel — while the
// explicit values force a family everywhere it applies: the striped
// families serve score-only affine-gap alignments, so traceback and
// linear-gap calls run the diagonal kernels regardless.
func WithKernel(k Kernel) Option {
	return func(a *Aligner) error {
		switch k {
		case KernelAuto, KernelDiagonal, KernelStriped, KernelLazyF:
			a.kernel = k
			return nil
		}
		return fmt.Errorf("swvec: unknown kernel %d", uint8(k))
	}
}

// New returns an Aligner with BLOSUM62 and default protein gaps,
// modified by the options.
func New(opts ...Option) (*Aligner, error) {
	a := &Aligner{mat: submat.Blosum62(), gaps: aln.DefaultGaps()}
	for _, opt := range opts {
		if err := opt(a); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// encode validates and encodes a raw residue sequence.
func (a *Aligner) encode(seq []byte) ([]uint8, error) {
	if len(seq) == 0 {
		return nil, fmt.Errorf("swvec: empty sequence")
	}
	alpha := a.mat.Alphabet()
	if err := alpha.Validate(seq); err != nil {
		return nil, err
	}
	return alpha.Encode(seq), nil
}

// ValidateSequence checks that seq is non-empty and every residue is
// valid under the aligner's alphabet, without running an alignment.
// Servers use it to reject a bad request at admission instead of
// poisoning the batch it would have joined.
func (a *Aligner) ValidateSequence(seq []byte) error {
	_, err := a.encode(seq)
	return err
}

// Score computes the optimal local alignment score of query against
// target using the adaptive 8/16-bit pair kernel.
func (a *Aligner) Score(query, target []byte) (int32, error) {
	q, err := a.encode(query)
	if err != nil {
		return 0, err
	}
	d, err := a.encode(target)
	if err != nil {
		return 0, err
	}
	res, _, err := core.AlignPairAdaptive(vek.Bare, q, d, a.mat, core.PairOptions{Gaps: a.gaps, Backend: a.pairBackend(), Kernel: a.kernel})
	if err != nil {
		return 0, err
	}
	return res.Score, nil
}

// Align computes the optimal local alignment with full traceback.
func (a *Aligner) Align(query, target []byte) (*Alignment, error) {
	q, err := a.encode(query)
	if err != nil {
		return nil, err
	}
	d, err := a.encode(target)
	if err != nil {
		return nil, err
	}
	res, tb, err := core.AlignPair16(vek.Bare, q, d, a.mat, core.PairOptions{Gaps: a.gaps, Traceback: true})
	if err != nil {
		return nil, err
	}
	return tb.Walk(res.EndQ, res.EndD, res.Score)
}

// Search aligns query against every database sequence with the
// high-throughput streaming batch pipeline: batches are transposed on
// demand, the 8-bit, 16-bit, and 32-bit stages overlap on one worker
// pool, and saturated lanes are rescued in flight.
func (a *Aligner) Search(query []byte, db []Sequence) (*SearchResult, error) {
	return a.SearchContext(context.Background(), query, db)
}

// SearchContext is Search with cancellation: when ctx is canceled or
// times out, the pipeline stops producing batches, drains its workers,
// and returns the partial SearchResult together with an error wrapping
// ctx.Err(). Result.Stats always holds a consistent per-stage
// snapshot; no goroutines outlive the call.
func (a *Aligner) SearchContext(ctx context.Context, query []byte, db []Sequence) (*SearchResult, error) {
	q, err := a.encode(query)
	if err != nil {
		return nil, err
	}
	return sched.SearchContext(ctx, q, db, a.mat, a.schedOptions())
}

// SearchAll aligns every query against every database sequence
// (the centralized-server scenario).
func (a *Aligner) SearchAll(queries [][]byte, db []Sequence) (*MultiSearchResult, error) {
	return a.SearchAllContext(context.Background(), queries, db)
}

// SearchAllContext is SearchAll with cancellation: on ctx cancellation
// or deadline the remaining batches drain unprocessed and the partial
// MultiSearchResult returns together with an error wrapping ctx.Err().
func (a *Aligner) SearchAllContext(ctx context.Context, queries [][]byte, db []Sequence) (*MultiSearchResult, error) {
	encoded := make([][]uint8, len(queries))
	for i, q := range queries {
		e, err := a.encode(q)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		encoded[i] = e
	}
	return sched.MultiSearchContext(ctx, encoded, db, a.mat, a.schedOptions())
}

// Matrix returns the aligner's substitution matrix.
func (a *Aligner) Matrix() *Matrix { return a.mat }

// Gaps returns the aligner's gap model.
func (a *Aligner) Gaps() Gaps { return a.gaps }

func (a *Aligner) schedOptions() sched.Options {
	return sched.Options{
		Gaps:          a.gaps,
		Threads:       a.threads,
		BlockCols:     a.block,
		SortByLength:  a.sortLen,
		PipelineDepth: a.depth,
		Width:         a.width,
		Backend:       a.backend,
		Kernel:        a.kernel,
	}
}

// pairBackend resolves the aligner's backend for the pair entry points,
// which have no instrumentation: Auto means native.
func (a *Aligner) pairBackend() Backend {
	if a.backend != BackendAuto {
		return a.backend
	}
	return BackendNative
}
