package main

import (
	"path/filepath"
	"testing"
)

func rep(findings ...finding) *swlintReport {
	r := &swlintReport{Tool: "swlint", Findings: findings}
	for _, f := range findings {
		if f.Suppressed {
			r.Suppress++
		} else {
			r.Active++
		}
	}
	return r
}

func sup(analyzer, pos, reason string) finding {
	return finding{Analyzer: analyzer, Position: pos, Suppressed: true, Reason: reason}
}

// TestRatchetHoldsAtParity: identical suppression sets pass.
func TestRatchetHoldsAtParity(t *testing.T) {
	base := summarize(rep(sup("hotpathalloc", "internal/core/a.go:10:2", "scratch reuse")))
	cur := summarize(rep(sup("hotpathalloc", "internal/core/a.go:99:2", "scratch reuse")))
	out := compare(base, cur)
	if !out.OK {
		t.Fatalf("ratchet failed at parity: %+v", out)
	}
	if len(out.NewEntries) != 0 || len(out.RemovedEntries) != 0 {
		t.Fatalf("line-number churn must not register as entry drift: %+v", out)
	}
}

// TestRatchetFailsOnGrowth is the acceptance case: a suppression added
// without a baseline bump fails the build and names the new entry.
func TestRatchetFailsOnGrowth(t *testing.T) {
	base := summarize(rep(sup("hotpathalloc", "internal/core/a.go:10:2", "scratch reuse")))
	cur := summarize(rep(
		sup("hotpathalloc", "internal/core/a.go:10:2", "scratch reuse"),
		sup("bcecheck", "internal/native/k.go:40:1", "cold prologue"),
	))
	out := compare(base, cur)
	if out.OK {
		t.Fatal("suppression grew but the ratchet passed")
	}
	if len(out.Grew) != 1 || out.Grew[0] != "bcecheck: 1 suppression(s), baseline allows 0" {
		t.Fatalf("grew = %v", out.Grew)
	}
	if len(out.NewEntries) != 1 || out.NewEntries[0].File != "internal/native/k.go" {
		t.Fatalf("new entries = %+v", out.NewEntries)
	}
}

// TestRatchetMoveBetweenAnalyzersFails: totals balancing out is not
// enough — a new suppression of analyzer B is a new decision even if
// one of analyzer A was removed.
func TestRatchetMoveBetweenAnalyzersFails(t *testing.T) {
	base := summarize(rep(sup("hotpathalloc", "internal/core/a.go:10:2", "x")))
	cur := summarize(rep(sup("ctxblock", "internal/sched/s.go:5:3", "y")))
	out := compare(base, cur)
	if out.OK {
		t.Fatal("analyzer-level growth hidden by a balanced total")
	}
	if len(out.Shrunk) != 1 {
		t.Fatalf("shrunk = %v", out.Shrunk)
	}
}

// TestRatchetReportsShrinkage: dropping a suppression passes but is
// surfaced so the baseline gets tightened.
func TestRatchetReportsShrinkage(t *testing.T) {
	base := summarize(rep(
		sup("hotpathalloc", "internal/core/a.go:10:2", "x"),
		sup("hotpathalloc", "internal/core/b.go:20:2", "y"),
	))
	cur := summarize(rep(sup("hotpathalloc", "internal/core/a.go:10:2", "x")))
	out := compare(base, cur)
	if !out.OK {
		t.Fatalf("shrinkage must pass: %+v", out)
	}
	if len(out.Shrunk) != 1 || len(out.RemovedEntries) != 1 {
		t.Fatalf("shrinkage not surfaced: %+v", out)
	}
}

// TestBaselineRoundTrip: -write-baseline output reads back as the same
// ratchet state.
func TestBaselineRoundTrip(t *testing.T) {
	cur := summarize(rep(
		sup("wirecode", "internal/cluster/wire.go:8:1", "legacy alias"),
		sup("bcecheck", "internal/native/k.go:40:1", "cold prologue"),
	))
	path := filepath.Join(t.TempDir(), "SWLINT_baseline.json")
	if err := writeJSON(path, cur); err != nil {
		t.Fatal(err)
	}
	back, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	out := compare(back, cur)
	if !out.OK || len(out.NewEntries) != 0 || len(out.RemovedEntries) != 0 || len(out.Shrunk) != 0 {
		t.Fatalf("round-tripped baseline is not at parity: %+v", out)
	}
}
