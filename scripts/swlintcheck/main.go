// Command swlintcheck is the suppression ratchet: it compares the
// swlint JSON artifact from this run (SWLINT_ci.json) against the
// committed baseline (SWLINT_baseline.json) and fails when any
// analyzer's suppressed-finding count grew. A new //swlint:ignore
// therefore needs an explicit baseline bump in the same PR — run with
// -write-baseline and commit the result — so suppressions are a
// reviewed decision, never quiet drift. Stale suppressions need no
// handling here: the analysis framework promotes them to active
// findings, which fail swlint itself.
//
// Usage:
//
//	go run ./scripts/swlintcheck -baseline SWLINT_baseline.json \
//	    -current SWLINT_ci.json -out SWLINTCHECK_ci.json
//	go run ./scripts/swlintcheck -current SWLINT_ci.json -write-baseline
//
// The baseline is a derived summary (counts per analyzer plus
// file-level entries), not the raw report: line numbers churn with
// every edit, but a suppression moving between files or analyzers is
// exactly what review should see.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// swlintReport mirrors cmd/swlint's -json schema (the subset the
// ratchet reads).
type swlintReport struct {
	Tool     string    `json:"tool"`
	Tags     []string  `json:"tags"`
	Active   int       `json:"active"`
	Suppress int       `json:"suppressed"`
	Findings []finding `json:"findings"`
}

type finding struct {
	Analyzer   string `json:"analyzer"`
	Position   string `json:"position"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason"`
}

// entry is one suppression in the baseline, keyed at file granularity
// so line-number churn never invalidates the baseline.
type entry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Reason   string `json:"reason"`
}

func (e entry) key() string { return e.Analyzer + "\x00" + e.File }

// baseline is the committed ratchet state derived from a swlint
// report.
type baseline struct {
	Tool       string         `json:"tool"`
	Tags       []string       `json:"tags"`
	Suppressed int            `json:"suppressed"`
	ByAnalyzer map[string]int `json:"by_analyzer"`
	Entries    []entry        `json:"entries"`
}

// checkReport is the JSON artifact swlintcheck writes: the verdict
// next to the deltas that produced it.
type checkReport struct {
	Tool               string   `json:"tool"`
	BaselineSuppressed int      `json:"baseline_suppressed"`
	CurrentSuppressed  int      `json:"current_suppressed"`
	Grew               []string `json:"grew"`
	Shrunk             []string `json:"shrunk"`
	NewEntries         []entry  `json:"new_entries"`
	RemovedEntries     []entry  `json:"removed_entries"`
	OK                 bool     `json:"ok"`
}

// summarize reduces a swlint report to the ratchet baseline form.
func summarize(r *swlintReport) baseline {
	b := baseline{
		Tool:       "swlintcheck-baseline",
		Tags:       r.Tags,
		ByAnalyzer: make(map[string]int),
	}
	if b.Tags == nil {
		b.Tags = []string{}
	}
	for _, f := range r.Findings {
		if !f.Suppressed {
			continue
		}
		file, _, _ := strings.Cut(f.Position, ":")
		b.Suppressed++
		b.ByAnalyzer[f.Analyzer]++
		b.Entries = append(b.Entries, entry{Analyzer: f.Analyzer, File: file, Reason: f.Reason})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		if b.Entries[i].Analyzer != b.Entries[j].Analyzer {
			return b.Entries[i].Analyzer < b.Entries[j].Analyzer
		}
		if b.Entries[i].File != b.Entries[j].File {
			return b.Entries[i].File < b.Entries[j].File
		}
		return b.Entries[i].Reason < b.Entries[j].Reason
	})
	return b
}

// compare ratchets cur against base. Growth in any analyzer's
// suppression count is a failure; shrinkage is progress the caller
// should bank by tightening the baseline.
func compare(base, cur baseline) checkReport {
	rep := checkReport{
		Tool:               "swlintcheck",
		BaselineSuppressed: base.Suppressed,
		CurrentSuppressed:  cur.Suppressed,
		Grew:               []string{},
		Shrunk:             []string{},
		NewEntries:         []entry{},
		RemovedEntries:     []entry{},
	}
	analyzers := make(map[string]bool)
	for a := range base.ByAnalyzer {
		analyzers[a] = true
	}
	for a := range cur.ByAnalyzer {
		analyzers[a] = true
	}
	names := make([]string, 0, len(analyzers))
	for a := range analyzers {
		names = append(names, a)
	}
	sort.Strings(names)
	for _, a := range names {
		b, c := base.ByAnalyzer[a], cur.ByAnalyzer[a]
		switch {
		case c > b:
			rep.Grew = append(rep.Grew, fmt.Sprintf("%s: %d suppression(s), baseline allows %d", a, c, b))
		case c < b:
			rep.Shrunk = append(rep.Shrunk, fmt.Sprintf("%s: %d suppression(s), baseline allows %d", a, c, b))
		}
	}

	// File-level entry diff: informational, so review sees where the
	// counts moved even when totals balance out.
	baseCount := make(map[string]int)
	for _, e := range base.Entries {
		baseCount[e.key()]++
	}
	curCount := make(map[string]int)
	for _, e := range cur.Entries {
		curCount[e.key()]++
	}
	for _, e := range cur.Entries {
		if curCount[e.key()] > baseCount[e.key()] {
			curCount[e.key()]--
			rep.NewEntries = append(rep.NewEntries, e)
		}
	}
	for _, e := range base.Entries {
		if baseCount[e.key()] > curCount[e.key()] {
			baseCount[e.key()]--
			rep.RemovedEntries = append(rep.RemovedEntries, e)
		}
	}
	rep.OK = len(rep.Grew) == 0
	return rep
}

func readReport(path string) (*swlintReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r swlintReport
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if r.Tool != "swlint" {
		return nil, fmt.Errorf("%s: not a swlint report (tool=%q)", path, r.Tool)
	}
	return &r, nil
}

func readBaseline(path string) (baseline, error) {
	var b baseline
	blob, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(blob, &b); err != nil {
		return b, fmt.Errorf("%s: %v", path, err)
	}
	if b.Tool != "swlintcheck-baseline" {
		return b, fmt.Errorf("%s: not a swlintcheck baseline (tool=%q)", path, b.Tool)
	}
	if b.ByAnalyzer == nil {
		b.ByAnalyzer = make(map[string]int)
	}
	return b, nil
}

func writeJSON(path string, v any) error {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

func main() {
	var (
		baselinePath  = flag.String("baseline", "SWLINT_baseline.json", "committed suppression baseline")
		currentPath   = flag.String("current", "SWLINT_ci.json", "this run's swlint -json report")
		outPath       = flag.String("out", "SWLINTCHECK_ci.json", "comparison artifact to write ('' disables)")
		writeBaseline = flag.Bool("write-baseline", false, "regenerate the baseline from -current and exit (the explicit bump)")
	)
	flag.Parse()

	curReport, err := readReport(*currentPath)
	if err != nil {
		fatal("%v", err)
	}
	cur := summarize(curReport)

	if *writeBaseline {
		if err := writeJSON(*baselinePath, cur); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("swlintcheck: wrote %s (%d suppression(s)); commit it with the change that needed the bump\n",
			*baselinePath, cur.Suppressed)
		return
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		fatal("%v (run with -write-baseline to create it)", err)
	}
	rep := compare(base, cur)

	if *outPath != "" {
		if err := writeJSON(*outPath, rep); err != nil {
			fatal("%v", err)
		}
	}

	for _, e := range rep.NewEntries {
		fmt.Printf("swlintcheck: new suppression  [%s] %s (%s)\n", e.Analyzer, e.File, e.Reason)
	}
	for _, e := range rep.RemovedEntries {
		fmt.Printf("swlintcheck: gone suppression [%s] %s\n", e.Analyzer, e.File)
	}
	for _, s := range rep.Shrunk {
		fmt.Printf("swlintcheck: improved        %s — tighten the baseline with -write-baseline\n", s)
	}
	if !rep.OK {
		for _, s := range rep.Grew {
			fmt.Fprintf(os.Stderr, "swlintcheck: ratchet violated: %s\n", s)
		}
		fatal("suppressions grew without a baseline bump; if intended, rerun with -write-baseline and commit %s", *baselinePath)
	}
	fmt.Printf("swlintcheck: %d suppression(s), baseline %d — ratchet holds\n", cur.Suppressed, base.Suppressed)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "swlintcheck: "+format+"\n", args...)
	os.Exit(1)
}
