// Command benchcheck gates CI on benchmark regressions. It compares
// the bench-smoke stage's test2json stream (BENCH_ci.json) against a
// committed baseline (BENCH_baseline.json), keyed by the full
// sub-benchmark name — qlen=/backend=/width=/kernel= fields included,
// -procs suffix stripped — and fails when any end-to-end search
// benchmark's ns/op regressed past the threshold (default 1.30, i.e.
// 30% slower). The full comparison is written as a JSON artifact so
// every CI run keeps its perf verdict next to its perf numbers.
//
// Usage:
//
//	go run ./scripts/benchcheck -baseline BENCH_baseline.json \
//	    -current BENCH_ci.json -out BENCHCHECK_ci.json
//
// Benchmarks present on only one side are reported (added/removed) but
// never fail the gate: renames should show up in review, not block it.
// An empty intersection does fail — a gate comparing nothing is a gate
// that has silently rotted.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of the test2json stream benchcheck reads.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// resultRE matches a benchmark result line reassembled from the
// output stream: name, iteration count, ns/op.
var resultRE = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.eE+]+) ns/op`)

// procsRE strips the -procs suffix the bench runner appends under
// GOMAXPROCS>1, so keys are stable across runner core counts.
var procsRE = regexp.MustCompile(`-\d+$`)

// parseBench extracts name -> ns/op from a test2json benchmark
// stream. Result lines may be split across output events, so the
// stream's output is reassembled into text first. A name measured more
// than once keeps its fastest run.
func parseBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 8<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("%s: not a test2json stream: %v", path, err)
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(text.String(), "\n") {
		m := resultRE.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		name := procsRE.ReplaceAllString(m[1], "")
		if prev, ok := out[name]; !ok || ns < prev {
			out[name] = ns
		}
	}
	return out, nil
}

// comparison is one benchmark's verdict in the artifact.
type comparison struct {
	Name       string  `json:"name"`
	BaselineNs float64 `json:"baseline_ns"`
	CurrentNs  float64 `json:"current_ns"`
	Ratio      float64 `json:"ratio"`
	Regression bool    `json:"regression"`
}

// report is the JSON artifact benchcheck writes. Added and Removed
// are always present (never omitted when empty) so baseline drift —
// a sub-benchmark in the current run with no baseline entry, or one
// that silently vanished — is visible in every artifact.
type report struct {
	Threshold   float64      `json:"threshold"`
	Match       string       `json:"match"`
	Compared    []comparison `json:"compared"`
	Added       []string     `json:"added"`
	Removed     []string     `json:"removed"`
	Regressions int          `json:"regressions"`
}

// buildReport compares the current run against the baseline: common
// names get a ratio verdict, baseline-only names land in Removed, and
// current-only names land in Added. New entries never fail the gate —
// renames should show up in review, not block it — but they are
// reported and written to the artifact so the baseline gets updated
// instead of rotting.
func buildReport(base, cur map[string]float64, threshold float64, match string) report {
	rep := report{Threshold: threshold, Match: match, Added: []string{}, Removed: []string{}}
	for name, b := range base {
		c, ok := cur[name]
		if !ok {
			rep.Removed = append(rep.Removed, name)
			continue
		}
		cmp := comparison{
			Name:       name,
			BaselineNs: b,
			CurrentNs:  c,
			Ratio:      c / b,
			Regression: c/b > threshold,
		}
		if cmp.Regression {
			rep.Regressions++
		}
		rep.Compared = append(rep.Compared, cmp)
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			rep.Added = append(rep.Added, name)
		}
	}
	sort.Slice(rep.Compared, func(i, j int) bool { return rep.Compared[i].Name < rep.Compared[j].Name })
	sort.Strings(rep.Added)
	sort.Strings(rep.Removed)
	return rep
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline test2json stream")
		currentPath  = flag.String("current", "BENCH_ci.json", "this run's test2json stream")
		outPath      = flag.String("out", "BENCHCHECK_ci.json", "comparison artifact to write ('' disables)")
		threshold    = flag.Float64("threshold", 1.30, "fail when current/baseline ns/op exceeds this")
		match        = flag.String("match", `^BenchmarkSearch(EndToEnd|Pipeline|Scatter)/`, "gate only benchmarks matching this regexp")
	)
	flag.Parse()

	matchRE, err := regexp.Compile(*match)
	if err != nil {
		fatal("bad -match: %v", err)
	}
	base, err := parseBench(*baselinePath)
	if err != nil {
		fatal("%v", err)
	}
	cur, err := parseBench(*currentPath)
	if err != nil {
		fatal("%v", err)
	}
	filter := func(m map[string]float64) map[string]float64 {
		out := make(map[string]float64)
		for k, v := range m {
			if matchRE.MatchString(k) {
				out[k] = v
			}
		}
		return out
	}
	base, cur = filter(base), filter(cur)

	rep := buildReport(base, cur, *threshold, *match)

	if *outPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal("%v", err)
		}
		if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
			fatal("%v", err)
		}
	}

	for _, c := range rep.Compared {
		verdict := "ok"
		if c.Regression {
			verdict = "REGRESSION"
		}
		fmt.Printf("benchcheck: %-10s %6.2fx  %s\n", verdict, c.Ratio, c.Name)
	}
	for _, n := range rep.Added {
		fmt.Printf("benchcheck: added       %s\n", n)
	}
	for _, n := range rep.Removed {
		fmt.Printf("benchcheck: removed     %s\n", n)
	}
	if len(rep.Added) > 0 {
		fmt.Printf("benchcheck: %d benchmark(s) have no baseline entry; refresh BENCH_baseline.json to gate them\n", len(rep.Added))
	}
	if len(rep.Compared) == 0 {
		fatal("no benchmarks in common between %s and %s (match %s)", *baselinePath, *currentPath, *match)
	}
	if rep.Regressions > 0 {
		fatal("%d benchmark(s) regressed more than %.0f%%", rep.Regressions, (*threshold-1)*100)
	}
	fmt.Printf("benchcheck: %d benchmarks within %.0f%% of baseline\n", len(rep.Compared), (*threshold-1)*100)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(1)
}
