package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestBuildReportBaselineDrift: a sub-benchmark present only in the
// current run must land in Added (not crash the comparison, not
// vanish), one present only in the baseline lands in Removed, and
// neither counts as a regression.
func TestBuildReportBaselineDrift(t *testing.T) {
	base := map[string]float64{
		"BenchmarkSearchEndToEnd/backend=native": 100,
		"BenchmarkSearchEndToEnd/backend=gone":   50,
	}
	cur := map[string]float64{
		"BenchmarkSearchEndToEnd/backend=native": 110,
		"BenchmarkSearchEndToEnd/backend=fresh":  70,
	}
	rep := buildReport(base, cur, 1.30, ".")
	if len(rep.Added) != 1 || rep.Added[0] != "BenchmarkSearchEndToEnd/backend=fresh" {
		t.Fatalf("added = %v", rep.Added)
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != "BenchmarkSearchEndToEnd/backend=gone" {
		t.Fatalf("removed = %v", rep.Removed)
	}
	if rep.Regressions != 0 || len(rep.Compared) != 1 {
		t.Fatalf("drift must not gate: %+v", rep)
	}
}

// TestBuildReportEmptyDriftLists: the artifact always carries the
// added/removed lists, as empty arrays rather than omitted fields.
func TestBuildReportEmptyDriftLists(t *testing.T) {
	rep := buildReport(map[string]float64{"B/x": 1}, map[string]float64{"B/x": 1}, 1.30, ".")
	if rep.Added == nil || rep.Removed == nil {
		t.Fatalf("drift lists must be non-nil: %+v", rep)
	}
}

// TestBuildReportRegression: the ratio gate still fires on common
// entries.
func TestBuildReportRegression(t *testing.T) {
	rep := buildReport(map[string]float64{"B/x": 100}, map[string]float64{"B/x": 150}, 1.30, ".")
	if rep.Regressions != 1 || !rep.Compared[0].Regression {
		t.Fatalf("50%% slowdown not flagged: %+v", rep)
	}
}

// TestParseBench: result lines split across output events are
// reassembled, -procs suffixes are stripped, and repeated names keep
// the fastest run.
func TestParseBench(t *testing.T) {
	stream := `{"Action":"output","Output":"BenchmarkSearchEndToEnd/backend=native-8   "}
{"Action":"output","Output":"10   1200 ns/op\n"}
{"Action":"output","Output":"BenchmarkSearchEndToEnd/backend=native-8   12   1100 ns/op\n"}
{"Action":"pass"}
`
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(stream), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	ns, ok := got["BenchmarkSearchEndToEnd/backend=native"]
	if !ok || ns != 1100 {
		t.Fatalf("parseBench = %v", got)
	}
}
