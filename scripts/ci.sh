#!/usr/bin/env bash
# CI entry point: tier-1 verification, static checks, and the
# race-enabled pass over the concurrent packages. Mirrors `make ci`
# for environments without make.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== build =="
go build ./...

echo "== test =="
go test ./...

echo "== vet =="
# ./... already spans cmd/; the separate cmd pass was redundant.
go vet ./...

echo "== swlint =="
# Repo-specific invariant suite (DESIGN.md §11), run twice: the plain
# build, then -tags failpoint so the chaos-only code (failpoint sites,
# the tests that arm them) is linted too. The tagged run's JSON report
# keeps every finding, suppressed included — it is the superset view —
# so CI runs accumulate the suppression trajectory alongside the perf
# one.
go run ./cmd/swlint ./...
go run ./cmd/swlint -tags failpoint -json SWLINT_ci.json ./...

echo "== swlintcheck (suppression ratchet) =="
# Compare this run's suppressed-finding counts against the committed
# SWLINT_baseline.json: any analyzer's count growing without an
# explicit baseline bump (scripts/swlintcheck -write-baseline) fails
# the build. The comparison lands in SWLINTCHECK_ci.json for the
# artifact upload.
go run ./scripts/swlintcheck -baseline SWLINT_baseline.json -current SWLINT_ci.json -out SWLINTCHECK_ci.json

echo "== portability build (CGO_ENABLED=0) =="
CGO_ENABLED=0 go build ./...

echo "== race =="
go test -race -short ./...

echo "== chaos (failpoint build, race) =="
# The fault-injection build (DESIGN.md §12): chaos suites force kernel
# panics, transient faults, and breaker trips, and assert quarantine
# reporting plus zero goroutine leaks under the race detector.
go test -race -short -tags failpoint ./...

echo "== cluster e2e (3-shard chaos gate) =="
# The full scatter-gather stack as it ships, both deployment shapes:
# replicas=1 spawns a 3-shard loopback cluster, SIGKILLs one shard
# mid-search, and requires every merged response to stay bit-identical
# to a single-node search of the shards that answered with the dead
# shard reported partial; replicas=2 spawns 3 shards x 2 replicas,
# SIGKILLs a primary mid-search, and requires every response complete
# (partial=false) and bit-identical to the full single-node search —
# the slice is retried on its surviving replica, not skipped. Both
# under the race detector with failpoints compiled in, leakchecked.
go test -race -tags failpoint -run 'TestClusterE2E' -v ./cmd/swrouter

echo "== fuzz smoke =="
go test -fuzz=FuzzAlignWidths -fuzztime=10s -run FuzzAlignWidths ./internal/core
go test -fuzz=FuzzNativeVsModeled -fuzztime=10s -run FuzzNativeVsModeled ./internal/core
go test -fuzz=FuzzKernelsVsDiagonal -fuzztime=10s -run FuzzKernelsVsDiagonal ./internal/core
go test -fuzz=FuzzFASTADecode -fuzztime=10s -run FuzzFASTADecode ./internal/seqio

echo "== bench smoke =="
# One iteration of every search benchmark plus the native-vs-modeled
# backend comparison, streamed as test2json into BENCH_ci.json so CI
# runs accumulate a perf trajectory over time. Sub-benchmark names
# carry backend=/width= fields so entries are comparable across PRs.
go test -run '^$' -bench 'BenchmarkSearch|BenchmarkBackends' -benchtime 1x -json . > BENCH_ci.json
grep -q '"Action":"pass"' BENCH_ci.json || { echo "bench smoke failed" >&2; exit 1; }
# Second pass over the gated end-to-end benchmarks only, appended to
# the same stream: benchcheck keys on the fastest run per name, and
# min-of-2 tames the noise a single one-iteration sample carries.
# Scatter sub-names carry replicas= so the replicated routing walk is
# priced separately from the single-copy path.
go test -run '^$' -bench 'BenchmarkSearch(EndToEnd|Pipeline|Scatter)' -benchtime 1x -json . >> BENCH_ci.json

echo "== benchcheck (regression gate) =="
# Compare this run's end-to-end search benchmarks against the
# committed baseline, keyed by full sub-benchmark name (backend=/
# width=/kernel= fields). A >30% ns/op regression fails the build; the
# full comparison lands in BENCHCHECK_ci.json for the artifact upload.
go run ./scripts/benchcheck -baseline BENCH_baseline.json -current BENCH_ci.json -out BENCHCHECK_ci.json

echo "ci: all checks passed"
