#!/usr/bin/env bash
# CI entry point: tier-1 verification, static checks, and the
# race-enabled pass over the concurrent packages. Mirrors `make ci`
# for environments without make.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== build =="
go build ./...

echo "== test =="
go test ./...

echo "== vet =="
go vet ./...

echo "== race =="
go test -race -short ./internal/sched ./internal/seqio ./internal/core .

echo "== fuzz smoke =="
go test -fuzz=FuzzAlignWidths -fuzztime=10s -run FuzzAlignWidths ./internal/core

echo "ci: all checks passed"
